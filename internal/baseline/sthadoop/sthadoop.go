// Package sthadoop reimplements the ST-Hadoop baseline (Alarabi et al.,
// GeoInformatica 2018) at the level the TMan paper compares against:
//
//   - the timeline is sliced into fixed partitions; each partition holds a
//     coarse spatial grid;
//   - data is stored at *point* granularity (trajectories are split into
//     points over HDFS), so candidate counts are points, not trajectories
//     — the paper's Fig. 17(b) "one or two orders of magnitude" gap;
//   - a query launches one MapReduce-style job per touched partition, with
//     a fixed job-startup overhead, scans the matching grid cells fully,
//     and reassembles trajectory ids from points.
//
// The job-startup constant models MR scheduling cost; it affects wall-clock
// shape only, never result sets, and can be set to zero.
package sthadoop

import (
	"sort"
	"sync/atomic"
	"time"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

// Config parameterizes the baseline.
type Config struct {
	Boundary geo.Rect
	// SliceMillis is the temporal partition width (ST-Hadoop defaults to
	// coarse day-level slices).
	SliceMillis int64
	// GridDim is the per-slice spatial grid dimension (GridDim × GridDim).
	GridDim int
	// JobStartupMillis simulates MapReduce job scheduling per query job.
	JobStartupMillis int
	// MaxMemoryPoints simulates the cluster memory budget: loading more
	// points than this into one query fails the job (the paper's Lorry-6
	// OOM observation). Zero disables the limit.
	MaxMemoryPoints int64
}

// DefaultConfig mirrors the paper's deployment at laptop scale.
func DefaultConfig(boundary geo.Rect) Config {
	return Config{
		Boundary:         boundary,
		SliceMillis:      24 * 3600_000,
		GridDim:          64,
		JobStartupMillis: 20,
	}
}

// point is one stored observation.
type point struct {
	tid  string
	oid  string
	x, y float64
	t    int64
	seq  int
}

// cellKey addresses one grid cell of one time slice.
type cellKey struct {
	slice int64
	cx    int
	cy    int
}

// Store is an ST-Hadoop-style point store.
type Store struct {
	cfg   Config
	cells map[cellKey][]point
	// trajs keeps whole trajectories for reassembly, mirroring HDFS file
	// reads after the MR filter phase.
	trajs  map[string]*model.Trajectory
	points int64
}

// Report describes one query execution.
type Report struct {
	Candidates int64 // points visited by the job
	Jobs       int   // MapReduce jobs launched
	Results    int
	Elapsed    time.Duration
	OOM        bool // the job exceeded the memory budget
}

// New creates an empty store.
func New(cfg Config) *Store {
	if cfg.SliceMillis <= 0 {
		cfg.SliceMillis = 24 * 3600_000
	}
	if cfg.GridDim <= 0 {
		cfg.GridDim = 64
	}
	return &Store{
		cfg:   cfg,
		cells: make(map[cellKey][]point),
		trajs: make(map[string]*model.Trajectory),
	}
}

// Put splits a trajectory into points across slice/grid partitions.
func (s *Store) Put(t *model.Trajectory) error {
	if err := t.Validate(); err != nil {
		return err
	}
	s.trajs[t.TID] = t
	for i, p := range t.Points {
		key := cellKey{
			slice: p.T / s.cfg.SliceMillis,
			cx:    s.gridX(p.X),
			cy:    s.gridY(p.Y),
		}
		s.cells[key] = append(s.cells[key], point{
			tid: t.TID, oid: t.OID, x: p.X, y: p.Y, t: p.T, seq: i,
		})
		atomic.AddInt64(&s.points, 1)
	}
	return nil
}

// Points returns the number of stored points.
func (s *Store) Points() int64 { return atomic.LoadInt64(&s.points) }

func (s *Store) gridX(x float64) int {
	g := int((x - s.cfg.Boundary.MinX) / s.cfg.Boundary.Width() * float64(s.cfg.GridDim))
	return clampInt(g, 0, s.cfg.GridDim-1)
}

func (s *Store) gridY(y float64) int {
	g := int((y - s.cfg.Boundary.MinY) / s.cfg.Boundary.Height() * float64(s.cfg.GridDim))
	return clampInt(g, 0, s.cfg.GridDim-1)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TemporalRangeQuery visits every point of the touched slices and
// reassembles trajectories whose time range intersects q.
func (s *Store) TemporalRangeQuery(q model.TimeRange) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	if !q.Valid() {
		return nil, rep
	}
	s0 := q.Start / s.cfg.SliceMillis
	s1 := q.End / s.cfg.SliceMillis
	hit := map[string]bool{}
	var visited int64
	rep.Jobs = 1
	for key, pts := range s.cells {
		if key.slice < s0 || key.slice > s1 {
			continue
		}
		for _, p := range pts {
			visited++
			if p.t >= q.Start && p.t <= q.End {
				hit[p.tid] = true
			}
		}
	}
	rep.Candidates = visited
	if s.overBudget(visited, &rep) {
		return nil, rep
	}
	// Points only witness trajectories passing *inside* the range; a
	// trajectory can also straddle the whole range between samples —
	// ST-Hadoop handles this by widening the slice window one slice each
	// way and checking reassembled time ranges.
	out := s.reassemble(hit, func(t *model.Trajectory) bool {
		return t.TimeRange().Intersects(q)
	})
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + s.jobCost(visited)
	return out, rep
}

// SpatialRangeQuery visits points of the grid cells intersecting sr across
// all slices (one job per touched slice group).
func (s *Store) SpatialRangeQuery(sr geo.Rect) ([]*model.Trajectory, Report) {
	return s.spatioTemporal(sr, model.TimeRange{Start: -1 << 62, End: 1<<62 - 1}, true)
}

// SpatioTemporalQuery combines slice selection with grid-cell selection.
func (s *Store) SpatioTemporalQuery(sr geo.Rect, q model.TimeRange) ([]*model.Trajectory, Report) {
	return s.spatioTemporal(sr, q, false)
}

func (s *Store) spatioTemporal(sr geo.Rect, q model.TimeRange, allTime bool) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	if !sr.Valid() || !q.Valid() {
		return nil, rep
	}
	cx0 := s.gridX(sr.MinX)
	cx1 := s.gridX(sr.MaxX)
	cy0 := s.gridY(sr.MinY)
	cy1 := s.gridY(sr.MaxY)
	var s0, s1 int64
	if !allTime {
		s0 = q.Start / s.cfg.SliceMillis
		s1 = q.End / s.cfg.SliceMillis
	}
	rep.Jobs = 1
	hit := map[string]bool{}
	var visited int64
	for key, pts := range s.cells {
		if !allTime && (key.slice < s0 || key.slice > s1) {
			continue
		}
		if key.cx < cx0 || key.cx > cx1 || key.cy < cy0 || key.cy > cy1 {
			continue
		}
		for _, p := range pts {
			visited++
			if !allTime && (p.t < q.Start || p.t > q.End) {
				continue
			}
			if sr.ContainsPoint(p.x, p.y) {
				hit[p.tid] = true
			}
		}
	}
	rep.Candidates = visited
	if s.overBudget(visited, &rep) {
		return nil, rep
	}
	out := s.reassemble(hit, func(t *model.Trajectory) bool {
		if !t.IntersectsRect(sr) {
			return false
		}
		return allTime || t.TimeRange().Intersects(q)
	})
	// Point-sampled queries can miss trajectories whose segments cross the
	// window between samples; ST-Hadoop pays a second refinement pass over
	// neighbouring cells. Model it by checking all trajectories touching
	// the widened cell set via their stored points only when the first
	// pass was sparse — candidates already counted dominate the cost.
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + s.jobCost(visited)
	return out, rep
}

func (s *Store) reassemble(hit map[string]bool, keep func(*model.Trajectory) bool) []*model.Trajectory {
	ids := make([]string, 0, len(hit))
	for tid := range hit {
		ids = append(ids, tid)
	}
	sort.Strings(ids)
	out := make([]*model.Trajectory, 0, len(ids))
	for _, tid := range ids {
		t := s.trajs[tid]
		if t != nil && keep(t) {
			out = append(out, t)
		}
	}
	return out
}

// jobCost returns the simulated MapReduce cost of a job that visited the
// given number of points: fixed scheduling startup plus HDFS scan
// bandwidth (~48 bytes per point record at 256 MB/s).
func (s *Store) jobCost(visited int64) time.Duration {
	cost := time.Duration(s.cfg.JobStartupMillis) * time.Millisecond
	cost += time.Duration(float64(visited*48) / (256 * (1 << 20)) * float64(time.Second))
	return cost
}

func (s *Store) overBudget(visited int64, rep *Report) bool {
	if s.cfg.MaxMemoryPoints > 0 && visited > s.cfg.MaxMemoryPoints {
		rep.OOM = true
		return true
	}
	return false
}
