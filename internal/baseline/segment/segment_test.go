package segment

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

func genTraj(rng *rand.Rand, tid string, start, durMillis int64, n int) *model.Trajectory {
	pts := make([]model.Point, n)
	x, y := 116.0+rng.Float64(), 39.0+rng.Float64()
	for i := range pts {
		x += 0.001
		y += 0.001
		pts[i] = model.Point{X: x, Y: y, T: start + int64(i)*durMillis/int64(n)}
	}
	return &model.Trajectory{OID: "o", TID: tid, Points: pts}
}

func TestSegmentationAndReassembly(t *testing.T) {
	s := New(30*60_000, kvstore.NoNetworkOptions())
	rng := rand.New(rand.NewSource(1))
	base := int64(1_700_000_000_000)
	var trajs []*model.Trajectory
	for i := 0; i < 100; i++ {
		// Durations 10 minutes to 4 hours: many cross segment boundaries.
		dur := int64(10+rng.Intn(230)) * 60_000
		tr := genTraj(rng, fmt.Sprintf("t%03d", i), base+rng.Int63n(48*3600_000), dur, 10+rng.Intn(40))
		trajs = append(trajs, tr)
		if err := s.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	if s.Segments() <= s.Trajs() {
		t.Errorf("segments %d should exceed trajectories %d (storage amplification)",
			s.Segments(), s.Trajs())
	}
	for iter := 0; iter < 20; iter++ {
		qs := base + rng.Int63n(48*3600_000)
		q := model.TimeRange{Start: qs, End: qs + 2*3600_000}
		got, rep := s.TemporalRangeQuery(q)
		var want []string
		for _, tr := range trajs {
			if tr.TimeRange().Intersects(q) {
				want = append(want, tr.TID)
			}
		}
		gotIDs := make([]string, len(got))
		for i, g := range got {
			gotIDs[i] = g.TID
		}
		sort.Strings(gotIDs)
		sort.Strings(want)
		if fmt.Sprint(gotIDs) != fmt.Sprint(want) {
			t.Fatalf("iter %d: got %v want %v", iter, gotIDs, want)
		}
		// Reassembled trajectories must be complete and ordered.
		for _, g := range got {
			if err := g.Validate(); err != nil {
				t.Fatalf("iter %d: reassembled trajectory invalid: %v", iter, err)
			}
			for _, orig := range trajs {
				if orig.TID == g.TID && len(g.Points) != len(orig.Points) {
					t.Fatalf("iter %d: %s reassembled with %d points, want %d",
						iter, g.TID, len(g.Points), len(orig.Points))
				}
			}
		}
		if rep.Candidates < int64(rep.Results) {
			t.Errorf("candidates %d below results %d", rep.Candidates, rep.Results)
		}
	}
}

func TestShortTrajectoriesSingleSegment(t *testing.T) {
	s := New(60*60_000, kvstore.NoNetworkOptions())
	rng := rand.New(rand.NewSource(2))
	// 5-minute trajectory fits one segment.
	tr := genTraj(rng, "short", 1_700_000_000_000, 5*60_000, 10)
	if err := s.Put(tr); err != nil {
		t.Fatal(err)
	}
	if s.Segments() != 1 {
		t.Errorf("short trajectory split into %d segments", s.Segments())
	}
	got, _ := s.TemporalRangeQuery(tr.TimeRange())
	if len(got) != 1 || len(got[0].Points) != 10 {
		t.Fatalf("round trip failed: %v", got)
	}
}
