// Package segment implements the segment-based storage model TMan's
// intact-row design is argued against (paper Sections I and II-1, after
// VRE): trajectories are split into fixed-duration segments, each stored
// under its start time; temporal queries must inspect all segments whose
// start falls in [floor(ts/d)·d, te] and reassemble whole trajectories
// from their pieces.
//
// The two costs the paper attributes to this model are both observable
// here: segment-level candidates (several per trajectory) and reassembly
// work proportional to the pieces retrieved.
package segment

import (
	"sort"
	"time"

	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/compress"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

// Store is a VRE-style segment store.
type Store struct {
	durMillis int64
	table     *kvstore.Table
	kv        *kvstore.Store
	segments  int64
	trajs     int64
	// maxSpanBuckets tracks the largest number of buckets one stored
	// segment spans (sparse sampling can leave bucket gaps); queries widen
	// their scan by this much to stay complete.
	maxSpanBuckets int64
	// byTID mirrors VRE's secondary index: trajectory id -> segment keys,
	// so reassembly fetches siblings with point lookups instead of scans.
	byTID map[string][][]byte
}

// Report describes one query execution.
type Report struct {
	Candidates  int64 // segments scanned
	Reassembled int   // trajectories stitched back together
	Results     int
	Elapsed     time.Duration
}

// New creates a store that segments trajectories every durMillis.
func New(durMillis int64, kvOpts kvstore.Options) *Store {
	if durMillis <= 0 {
		durMillis = 30 * 60_000
	}
	kv := kvstore.Open(kvOpts)
	return &Store{durMillis: durMillis, table: kv.OpenTable("segments"), kv: kv, byTID: make(map[string][][]byte)}
}

// Put splits the trajectory at duration boundaries and stores each segment
// under (startBucket, tid, seq).
func (s *Store) Put(t *model.Trajectory) error {
	if err := t.Validate(); err != nil {
		return err
	}
	segs := s.split(t)
	for i, seg := range segs {
		span := seg[len(seg)-1].T/s.durMillis - seg[0].T/s.durMillis
		if span > s.maxSpanBuckets {
			s.maxSpanBuckets = span
		}
		key := codec.AppendUint64(nil, uint64(seg[0].T/s.durMillis))
		key = codec.AppendInt64(key, seg[0].T)
		key = append(key, 0x00)
		key = append(key, t.TID...)
		key = append(key, byte(i))
		value := encodeSegment(t.OID, t.TID, i, len(segs), seg)
		s.table.Put(key, value)
		s.byTID[t.TID] = append(s.byTID[t.TID], key)
		s.segments++
	}
	s.trajs++
	return nil
}

// split cuts the point sequence at every duration boundary, duplicating the
// boundary point so segments stay connected (as segment stores must).
func (s *Store) split(t *model.Trajectory) [][]model.Point {
	var out [][]model.Point
	var cur []model.Point
	bucket := t.Points[0].T / s.durMillis
	for _, p := range t.Points {
		b := p.T / s.durMillis
		if b != bucket && len(cur) > 0 {
			cur = append(cur, p) // closing boundary point
			out = append(out, cur)
			cur = []model.Point{p}
			bucket = b
			continue
		}
		cur = append(cur, p)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// Segments returns the number of stored segments (vs Trajs logical rows) —
// the storage-amplification metric.
func (s *Store) Segments() int64 { return s.segments }

// Trajs returns the number of logical trajectories.
func (s *Store) Trajs() int64 { return s.trajs }

// StorageBytes returns the approximate physical footprint.
func (s *Store) StorageBytes() int { return s.table.ApproxSize() }

// TemporalRangeQuery returns whole trajectories intersecting q. Per the
// VRE scheme, it scans segments with start time in
// [floor(ts/d)·d, te], then fetches the *remaining* segments of every hit
// trajectory to reassemble it — the reassembly overhead the paper calls
// out.
func (s *Store) TemporalRangeQuery(q model.TimeRange) ([]*model.Trajectory, Report) {
	started := time.Now()
	before := s.kv.Stats().Snapshot()
	var rep Report
	if !q.Valid() {
		return nil, rep
	}
	lowBucket := q.Start/s.durMillis - s.maxSpanBuckets
	if lowBucket < 0 {
		lowBucket = 0
	}
	start := codec.AppendUint64(nil, uint64(lowBucket))
	end := codec.AppendUint64(nil, uint64(q.End/s.durMillis)+1)
	kvs := s.table.Scan(start, end, nil, 0)
	rep.Candidates = int64(len(kvs))

	hits := map[string][]piece{}
	for _, kv := range kvs {
		oid, tid, seq, total, pts, err := decodeSegment(kv.Value)
		if err != nil {
			continue
		}
		// Segment-level time filter.
		if len(pts) == 0 || pts[0].T > q.End || pts[len(pts)-1].T < q.Start {
			// A segment that does not itself intersect may still belong to
			// an intersecting trajectory; VRE keeps it only if another
			// segment hits. Skip here; reassembly below pulls siblings.
			continue
		}
		hits[tid] = append(hits[tid], piece{seq: seq, total: total, pts: pts, oid: oid})
	}

	// Reassembly: fetch missing sibling segments of every hit trajectory
	// (a second scan pass over the candidate range plus direct lookups).
	var out []*model.Trajectory
	tids := make([]string, 0, len(hits))
	for tid := range hits {
		tids = append(tids, tid)
	}
	sort.Strings(tids)
	for _, tid := range tids {
		pieces := hits[tid]
		total := pieces[0].total
		if len(pieces) < total {
			// Sibling segments live in other buckets; scan the whole table
			// range for this tid's remaining parts (VRE keeps a per-tid
			// lookup; the extra I/O is intrinsic either way).
			missing := s.fetchSiblings(tid, total, pieces)
			pieces = append(pieces, missing...)
			rep.Candidates += int64(len(missing))
		}
		if len(pieces) == 0 {
			continue
		}
		sort.Slice(pieces, func(i, j int) bool { return pieces[i].seq < pieces[j].seq })
		t := &model.Trajectory{OID: pieces[0].oid, TID: tid}
		for _, p := range pieces {
			// Drop the duplicated boundary point when stitching.
			pts := p.pts
			if len(t.Points) > 0 && len(pts) > 0 && pts[0] == t.Points[len(t.Points)-1] {
				pts = pts[1:]
			}
			t.Points = append(t.Points, pts...)
		}
		rep.Reassembled++
		if t.TimeRange().Intersects(q) {
			out = append(out, t)
		}
	}
	rep.Results = len(out)
	sim := s.kv.Stats().Snapshot().SimIONanos - before.SimIONanos
	rep.Elapsed = time.Since(started) + time.Duration(sim)
	return out, rep
}

// piece is one retrieved segment awaiting reassembly.
type piece struct {
	seq   int
	total int
	pts   []model.Point
	oid   string
}

// fetchSiblings retrieves the other segments of tid through the per-tid
// secondary index (point lookups), as VRE does.
func (s *Store) fetchSiblings(tid string, total int, have []piece) []piece {
	seen := map[int]bool{}
	for _, p := range have {
		seen[p.seq] = true
	}
	var out []piece
	for _, key := range s.byTID[tid] {
		value, ok := s.table.Get(key)
		if !ok {
			continue
		}
		_, ktid, seq, tot, pts, err := decodeSegment(value)
		if err != nil || ktid != tid || seen[seq] {
			continue
		}
		seen[seq] = true
		out = append(out, piece{seq: seq, total: tot, pts: pts, oid: ""})
		if len(seen) == total {
			break
		}
	}
	// OIDs travel in every segment; backfill from any fetched piece.
	for i := range out {
		if out[i].oid == "" && len(have) > 0 {
			out[i].oid = have[0].oid
		}
	}
	return out
}

func encodeSegment(oid, tid string, seq, total int, pts []model.Point) []byte {
	out := compress.AppendUvarint(nil, uint64(len(oid)))
	out = append(out, oid...)
	out = compress.AppendUvarint(out, uint64(len(tid)))
	out = append(out, tid...)
	out = compress.AppendUvarint(out, uint64(seq))
	out = compress.AppendUvarint(out, uint64(total))
	blob := compress.EncodePoints(pts)
	out = compress.AppendUvarint(out, uint64(len(blob)))
	return append(out, blob...)
}

func decodeSegment(b []byte) (oid, tid string, seq, total int, pts []model.Point, err error) {
	readStr := func() (string, bool) {
		l, n := compress.Uvarint(b)
		if n <= 0 || l > uint64(len(b)-n) {
			return "", false
		}
		s := string(b[n : n+int(l)])
		b = b[n+int(l):]
		return s, true
	}
	var ok bool
	if oid, ok = readStr(); !ok {
		return "", "", 0, 0, nil, model.ErrEmptyTrajectory
	}
	if tid, ok = readStr(); !ok {
		return "", "", 0, 0, nil, model.ErrEmptyTrajectory
	}
	sq, n := compress.Uvarint(b)
	if n <= 0 {
		return "", "", 0, 0, nil, model.ErrEmptyTrajectory
	}
	b = b[n:]
	tt, n := compress.Uvarint(b)
	if n <= 0 {
		return "", "", 0, 0, nil, model.ErrEmptyTrajectory
	}
	b = b[n:]
	bl, n := compress.Uvarint(b)
	if n <= 0 || bl > uint64(len(b)-n) {
		return "", "", 0, 0, nil, model.ErrEmptyTrajectory
	}
	pts, err = compress.DecodePoints(b[n : n+int(bl)])
	return oid, tid, int(sq), int(tt), pts, err
}
