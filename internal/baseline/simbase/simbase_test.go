package simbase

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
)

var boundary = geo.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}

func genTrajs(n int, seed int64) []*model.Trajectory {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*model.Trajectory, n)
	for i := range out {
		m := 3 + rng.Intn(20)
		pts := make([]model.Point, m)
		x := rng.Float64() * 9
		y := rng.Float64() * 9
		for j := range pts {
			x += (rng.Float64() - 0.5) * 0.2
			y += (rng.Float64() - 0.5) * 0.2
			pts[j] = model.Point{X: clamp(x, 0, 10), Y: clamp(y, 0, 10), T: int64(j) * 1000}
		}
		out[i] = &model.Trajectory{OID: "o", TID: fmt.Sprintf("t%04d", i), Points: pts}
	}
	return out
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func searchers(trajs []*model.Trajectory) []Searcher {
	return []Searcher{
		NewDFT(trajs, boundary, 16, 2),
		NewDITA(trajs, boundary, 16, 4),
		NewREPOSE(trajs, boundary, 25),
	}
}

func bruteThreshold(trajs []*model.Trajectory, q *model.Trajectory, m similarity.Measure, theta float64) []string {
	var out []string
	for _, t := range trajs {
		if similarity.Distance(m, q.Points, t.Points) <= theta {
			out = append(out, t.TID)
		}
	}
	sort.Strings(out)
	return out
}

func TestThresholdMatchesBruteForce(t *testing.T) {
	trajs := genTrajs(200, 1)
	rng := rand.New(rand.NewSource(2))
	for _, s := range searchers(trajs) {
		for _, m := range []similarity.Measure{similarity.Frechet, similarity.DTW, similarity.Hausdorff} {
			for iter := 0; iter < 3; iter++ {
				q := trajs[rng.Intn(len(trajs))]
				theta := 0.3
				if m == similarity.DTW {
					theta = 2.0
				}
				got, rep := s.Threshold(q, m, theta)
				want := bruteThreshold(trajs, q, m, theta)
				gotIDs := make([]string, len(got))
				for i, g := range got {
					gotIDs[i] = g.TID
				}
				sort.Strings(gotIDs)
				if len(gotIDs) != len(want) {
					t.Fatalf("%s %v iter %d: got %d results, want %d", s.Name(), m, iter, len(gotIDs), len(want))
				}
				for i := range want {
					if gotIDs[i] != want[i] {
						t.Fatalf("%s %v: result mismatch at %d", s.Name(), m, i)
					}
				}
				if rep.Candidates > len(trajs) {
					t.Errorf("%s: candidates %d exceed corpus", s.Name(), rep.Candidates)
				}
			}
		}
	}
}

func TestTopKMatchesBruteForce(t *testing.T) {
	trajs := genTrajs(200, 3)
	rng := rand.New(rand.NewSource(4))
	for _, s := range searchers(trajs) {
		for _, m := range []similarity.Measure{similarity.Frechet, similarity.Hausdorff} {
			for iter := 0; iter < 3; iter++ {
				q := trajs[rng.Intn(len(trajs))]
				k := 5 + rng.Intn(10)
				got, _ := s.TopK(q, m, k)
				if len(got) != k {
					t.Fatalf("%s %v: got %d results, want %d", s.Name(), m, len(got), k)
				}
				// kth best distance from brute force (excluding query).
				var dists []float64
				for _, tr := range trajs {
					if tr.TID == q.TID {
						continue
					}
					dists = append(dists, similarity.Distance(m, q.Points, tr.Points))
				}
				sort.Float64s(dists)
				kth := dists[k-1]
				for i, g := range got {
					d := similarity.Distance(m, q.Points, g.Points)
					if d > kth+1e-9 {
						t.Fatalf("%s %v iter %d: result %d dist %g > true kth %g", s.Name(), m, iter, i, d, kth)
					}
				}
				// Results sorted ascending by distance.
				for i := 1; i < len(got); i++ {
					a := similarity.Distance(m, q.Points, got[i-1].Points)
					b := similarity.Distance(m, q.Points, got[i].Points)
					if a > b+1e-9 {
						t.Fatalf("%s: results not sorted", s.Name())
					}
				}
			}
		}
	}
}

func TestPruningReducesCandidates(t *testing.T) {
	trajs := genTrajs(500, 5)
	q := trajs[0]
	for _, s := range searchers(trajs) {
		_, rep := s.Threshold(q, similarity.Frechet, 0.2)
		if rep.Candidates >= len(trajs) {
			t.Errorf("%s: no pruning (%d candidates of %d)", s.Name(), rep.Candidates, len(trajs))
		}
	}
}

func TestTopKZeroAndEmpty(t *testing.T) {
	trajs := genTrajs(10, 6)
	for _, s := range searchers(trajs) {
		if got, _ := s.TopK(trajs[0], similarity.Frechet, 0); len(got) != 0 {
			t.Errorf("%s: k=0 returned results", s.Name())
		}
	}
}

func TestNames(t *testing.T) {
	trajs := genTrajs(5, 7)
	names := map[string]bool{}
	for _, s := range searchers(trajs) {
		names[s.Name()] = true
	}
	if !names["dft"] || !names["dita"] || !names["repose"] {
		t.Errorf("names = %v", names)
	}
}
