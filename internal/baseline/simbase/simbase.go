// Package simbase reimplements the distributed in-memory similarity-search
// baselines of the paper's Section VI-E at the algorithmic level: DFT (Xie
// et al., VLDB 2017), DITA (Shang et al., SIGMOD 2018) and REPOSE (Zheng et
// al., ICDE 2021). All three are in-memory systems in the original papers,
// so in-memory Go implementations are the faithful substrate.
//
// Each baseline builds its own pruning structure and answers threshold and
// top-k similarity queries; the comparison metrics are exact-distance
// computations avoided (candidates) and wall-clock time.
package simbase

import (
	"container/heap"
	"math"
	"sort"
	"time"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
)

// Report describes one similarity query execution.
type Report struct {
	Candidates int // trajectories whose exact distance was computed
	Results    int
	Elapsed    time.Duration
}

// Searcher is the common interface of all similarity baselines.
type Searcher interface {
	Name() string
	Threshold(query *model.Trajectory, m similarity.Measure, theta float64) ([]*model.Trajectory, Report)
	TopK(query *model.Trajectory, m similarity.Measure, k int) ([]*model.Trajectory, Report)
	// SetJobOverhead configures the simulated distributed-job scheduling
	// cost added to every query (DFT, DITA and REPOSE are Spark-style
	// in-memory systems in their original papers; a query is a cluster
	// job). Zero disables the charge.
	SetJobOverhead(d time.Duration)
}

// jobOverhead is the embeddable mixin implementing SetJobOverhead.
type jobOverhead struct {
	overhead time.Duration
}

// SetJobOverhead implements Searcher.
func (j *jobOverhead) SetJobOverhead(d time.Duration) { j.overhead = d }

// entryLB computes the cheap lower bound shared by the baselines: MBR
// minimum distance (valid for Fréchet, Hausdorff, and DTW as argued in
// package similarity).
func entryLB(qmbr geo.Rect, embr geo.Rect) float64 {
	return qmbr.MinDist(embr)
}

// ---------------------------------------------------------------- DFT ---

// DFT partitions the space into a uniform grid of segments: each
// trajectory's segments are assigned to every partition they touch. A
// threshold query probes partitions within theta of the query MBR; a top-k
// query first samples c·k trajectories from each intersecting partition to
// obtain a cutoff, then runs the threshold search — the strategy whose
// over-large cutoffs the paper blames for DFT's big candidate sets.
type DFT struct {
	jobOverhead
	grid     int
	boundary geo.Rect
	parts    map[[2]int][]int // partition -> trajectory indices (deduped)
	trajs    []*model.Trajectory
	mbrs     []geo.Rect
	c        int
}

// NewDFT builds the structure. grid is the per-axis partition count; c is
// the per-partition sampling factor for top-k (DFT's default is small).
func NewDFT(trajs []*model.Trajectory, boundary geo.Rect, grid, c int) *DFT {
	if grid < 1 {
		grid = 16
	}
	if c < 1 {
		c = 2
	}
	d := &DFT{
		grid:     grid,
		boundary: boundary,
		parts:    make(map[[2]int][]int),
		trajs:    trajs,
		mbrs:     make([]geo.Rect, len(trajs)),
		c:        c,
	}
	for i, t := range trajs {
		d.mbrs[i] = t.MBR()
		seen := map[[2]int]bool{}
		t.Segments(func(s geo.Segment) bool {
			b := s.Bounds()
			x0, y0 := d.cellOf(b.MinX, b.MinY)
			x1, y1 := d.cellOf(b.MaxX, b.MaxY)
			for x := x0; x <= x1; x++ {
				for y := y0; y <= y1; y++ {
					key := [2]int{x, y}
					if !seen[key] {
						seen[key] = true
						d.parts[key] = append(d.parts[key], i)
					}
				}
			}
			return true
		})
		if len(t.Points) == 1 {
			x, y := d.cellOf(t.Points[0].X, t.Points[0].Y)
			d.parts[[2]int{x, y}] = append(d.parts[[2]int{x, y}], i)
		}
	}
	return d
}

// Name implements Searcher.
func (d *DFT) Name() string { return "dft" }

func (d *DFT) cellOf(x, y float64) (int, int) {
	cx := int((x - d.boundary.MinX) / d.boundary.Width() * float64(d.grid))
	cy := int((y - d.boundary.MinY) / d.boundary.Height() * float64(d.grid))
	if cx < 0 {
		cx = 0
	}
	if cx >= d.grid {
		cx = d.grid - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= d.grid {
		cy = d.grid - 1
	}
	return cx, cy
}

// candidatesWithin collects trajectory indices from partitions intersecting
// the query MBR expanded by dist.
func (d *DFT) candidatesWithin(qmbr geo.Rect, dist float64) []int {
	w := qmbr.Expand(dist)
	x0, y0 := d.cellOf(w.MinX, w.MinY)
	x1, y1 := d.cellOf(w.MaxX, w.MaxY)
	set := map[int]bool{}
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			for _, idx := range d.parts[[2]int{x, y}] {
				set[idx] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for idx := range set {
		out = append(out, idx)
	}
	sort.Ints(out)
	return out
}

// Threshold implements Searcher.
func (d *DFT) Threshold(query *model.Trajectory, m similarity.Measure, theta float64) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	qmbr := query.MBR()
	var out []*model.Trajectory
	for _, idx := range d.candidatesWithin(qmbr, theta) {
		if entryLB(qmbr, d.mbrs[idx]) > theta {
			continue
		}
		rep.Candidates++
		if similarity.Distance(m, query.Points, d.trajs[idx].Points) <= theta {
			out = append(out, d.trajs[idx])
		}
	}
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + d.overhead
	return out, rep
}

// TopK implements Searcher with DFT's c·k sampling cutoff.
func (d *DFT) TopK(query *model.Trajectory, m similarity.Measure, k int) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	if k <= 0 || len(d.trajs) == 0 {
		return nil, rep
	}
	qmbr := query.MBR()
	// Phase 1: sample c*k trajectories from each intersecting partition to
	// obtain a (loose) cutoff.
	x0, y0 := d.cellOf(qmbr.MinX, qmbr.MinY)
	x1, y1 := d.cellOf(qmbr.MaxX, qmbr.MaxY)
	sampled := map[int]bool{}
	for x := x0; x <= x1; x++ {
		for y := y0; y <= y1; y++ {
			part := d.parts[[2]int{x, y}]
			for i := 0; i < len(part) && i < d.c*k; i++ {
				sampled[part[i]] = true
			}
		}
	}
	cutoff := math.Inf(1)
	var dists []float64
	for idx := range sampled {
		if idx == indexOfTID(d.trajs, query.TID) {
			continue
		}
		rep.Candidates++
		dists = append(dists, similarity.Distance(m, query.Points, d.trajs[idx].Points))
	}
	sort.Float64s(dists)
	if len(dists) >= k {
		cutoff = dists[k-1]
	}
	if math.IsInf(cutoff, 1) {
		// Sparse sampling: fall back to a large radius.
		cutoff = math.Max(d.boundary.Width(), d.boundary.Height())
	}
	// Phase 2: threshold search with the cutoff.
	h := newTopKHeap(k)
	for _, idx := range d.candidatesWithin(qmbr, cutoff) {
		t := d.trajs[idx]
		if t.TID == query.TID {
			continue
		}
		if entryLB(qmbr, d.mbrs[idx]) > h.bound(cutoff) {
			continue
		}
		rep.Candidates++
		h.offer(similarity.Distance(m, query.Points, t.Points), t)
	}
	out := h.results()
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + d.overhead
	return out, rep
}

func indexOfTID(trajs []*model.Trajectory, tid string) int {
	for i, t := range trajs {
		if t.TID == tid {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------- DITA ---

// DITA indexes trajectories by pivot points (first, last, and maximal-
// deviation interior pivots) in a two-level structure: a grid over first
// points, then pivot vectors checked with triangle-style lower bounds. The
// paper observes DITA's index gets large and slow to probe on
// wide-boundary datasets (Lorry) — reproduced here by the per-cell pivot
// scans.
type DITA struct {
	jobOverhead
	grid     int
	boundary geo.Rect
	cells    map[[2]int][]int
	trajs    []*model.Trajectory
	pivots   [][]model.Point
	mbrs     []geo.Rect
}

// NewDITA builds the pivot index with p pivots per trajectory.
func NewDITA(trajs []*model.Trajectory, boundary geo.Rect, grid, p int) *DITA {
	if grid < 1 {
		grid = 32
	}
	if p < 2 {
		p = 4
	}
	d := &DITA{
		grid:     grid,
		boundary: boundary,
		cells:    make(map[[2]int][]int),
		trajs:    trajs,
		pivots:   make([][]model.Point, len(trajs)),
		mbrs:     make([]geo.Rect, len(trajs)),
	}
	for i, t := range trajs {
		d.mbrs[i] = t.MBR()
		feat := model.ExtractDPFeatures(t, 0, p)
		d.pivots[i] = feat.Rep
		first := t.Points[0]
		cx, cy := d.cellOf(first.X, first.Y)
		d.cells[[2]int{cx, cy}] = append(d.cells[[2]int{cx, cy}], i)
	}
	return d
}

// Name implements Searcher.
func (d *DITA) Name() string { return "dita" }

func (d *DITA) cellOf(x, y float64) (int, int) {
	cx := int((x - d.boundary.MinX) / d.boundary.Width() * float64(d.grid))
	cy := int((y - d.boundary.MinY) / d.boundary.Height() * float64(d.grid))
	if cx < 0 {
		cx = 0
	}
	if cx >= d.grid {
		cx = d.grid - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= d.grid {
		cy = d.grid - 1
	}
	return cx, cy
}

// pivotLB lower-bounds Fréchet (endpoints must match endpoints) and,
// more loosely, Hausdorff/DTW via nearest-pivot distances.
func (d *DITA) pivotLB(query *model.Trajectory, idx int, m similarity.Measure) float64 {
	qp := query.Points
	tp := d.pivots[idx]
	if len(qp) == 0 || len(tp) == 0 {
		return 0
	}
	if m == similarity.Frechet {
		// Discrete Fréchet matches first-with-first and last-with-last.
		dFirst := dist(qp[0], tp[0])
		dLast := dist(qp[len(qp)-1], tp[len(tp)-1])
		return math.Max(dFirst, dLast)
	}
	// Hausdorff/DTW: every query endpoint must be matched by some point of
	// the other trajectory; pivots plus the trajectory MBR give a valid
	// floor via the MBR distance.
	return entryLB(query.MBR(), d.mbrs[idx])
}

func dist(a, b model.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Threshold implements Searcher: probe first-point cells within theta of
// the query's first point (endpoint matching makes this exact for
// Fréchet), defaulting to a full sweep for other measures.
func (d *DITA) Threshold(query *model.Trajectory, m similarity.Measure, theta float64) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	var out []*model.Trajectory
	consider := func(idx int) {
		if d.pivotLB(query, idx, m) > theta {
			return
		}
		rep.Candidates++
		if similarity.Distance(m, query.Points, d.trajs[idx].Points) <= theta {
			out = append(out, d.trajs[idx])
		}
	}
	if m == similarity.Frechet {
		first := query.Points[0]
		w := geo.Rect{MinX: first.X, MinY: first.Y, MaxX: first.X, MaxY: first.Y}.Expand(theta)
		x0, y0 := d.cellOf(w.MinX, w.MinY)
		x1, y1 := d.cellOf(w.MaxX, w.MaxY)
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				for _, idx := range d.cells[[2]int{x, y}] {
					consider(idx)
				}
			}
		}
	} else {
		for idx := range d.trajs {
			consider(idx)
		}
	}
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + d.overhead
	return out, rep
}

// TopK implements Searcher with an expanding-radius search over the
// first-point grid (Fréchet) or a bounded sweep (other measures).
func (d *DITA) TopK(query *model.Trajectory, m similarity.Measure, k int) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	if k <= 0 {
		return nil, rep
	}
	h := newTopKHeap(k)
	type cand struct {
		lb  float64
		idx int
	}
	cands := make([]cand, 0, len(d.trajs))
	for idx, t := range d.trajs {
		if t.TID == query.TID {
			continue
		}
		cands = append(cands, cand{lb: d.pivotLB(query, idx, m), idx: idx})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lb < cands[j].lb })
	for _, c := range cands {
		if h.full() && c.lb > h.worst() {
			break // all remaining lower bounds exceed the kth best
		}
		rep.Candidates++
		h.offer(similarity.Distance(m, query.Points, d.trajs[c.idx].Points), d.trajs[c.idx])
	}
	out := h.results()
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + d.overhead
	return out, rep
}

// -------------------------------------------------------------- REPOSE ---

// REPOSE builds a reference-point trie: trajectories are summarized as the
// sequence of their nearest reference points; a query prunes whole trie
// branches with triangle-inequality bounds. With a large spatial span the
// reference set covers the map thinly and pruning degrades — the paper's
// observation on Lorry.
type REPOSE struct {
	jobOverhead
	refs    []model.Point
	trajs   []*model.Trajectory
	sigs    [][]int
	mbrs    []geo.Rect
	byHead  map[int][]int // first signature symbol -> trajectory indices
	spacing float64       // max point-to-nearest-reference distance
}

// NewREPOSE builds the structure with r reference points chosen on a
// uniform grid over the boundary (the original uses clustering; a grid has
// the same structural properties for pruning).
func NewREPOSE(trajs []*model.Trajectory, boundary geo.Rect, r int) *REPOSE {
	if r < 4 {
		r = 16
	}
	side := int(math.Sqrt(float64(r)))
	if side < 2 {
		side = 2
	}
	refs := make([]model.Point, 0, side*side)
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			refs = append(refs, model.Point{
				X: boundary.MinX + (float64(i)+0.5)*boundary.Width()/float64(side),
				Y: boundary.MinY + (float64(j)+0.5)*boundary.Height()/float64(side),
			})
		}
	}
	cellW := boundary.Width() / float64(side)
	cellH := boundary.Height() / float64(side)
	rp := &REPOSE{
		refs:  refs,
		trajs: trajs,
		sigs:  make([][]int, len(trajs)),
		mbrs:  make([]geo.Rect, len(trajs)),
		// A point is at most half a reference-cell diagonal from its
		// nearest reference.
		spacing: math.Hypot(cellW, cellH) / 2,
		byHead:  make(map[int][]int),
	}
	for i, t := range trajs {
		rp.mbrs[i] = t.MBR()
		feat := model.ExtractDPFeatures(t, 0, 6)
		sig := make([]int, len(feat.Rep))
		for j, p := range feat.Rep {
			sig[j] = rp.nearestRef(p)
		}
		rp.sigs[i] = sig
		rp.byHead[sig[0]] = append(rp.byHead[sig[0]], i)
	}
	return rp
}

// Name implements Searcher.
func (r *REPOSE) Name() string { return "repose" }

func (r *REPOSE) nearestRef(p model.Point) int {
	best, bestD := 0, math.Inf(1)
	for i, ref := range r.refs {
		if d := dist(p, ref); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Threshold implements Searcher using MBR bounds per head-group.
func (r *REPOSE) Threshold(query *model.Trajectory, m similarity.Measure, theta float64) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	qmbr := query.MBR()
	var out []*model.Trajectory
	for _, group := range r.groupsNear(qmbr, theta) {
		for _, idx := range group {
			if entryLB(qmbr, r.mbrs[idx]) > theta {
				continue
			}
			rep.Candidates++
			if similarity.Distance(m, query.Points, r.trajs[idx].Points) <= theta {
				out = append(out, r.trajs[idx])
			}
		}
	}
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + r.overhead
	return out, rep
}

// groupsNear returns head groups that can contain a trajectory within dist
// of the query MBR. A trajectory's first representative point lies within
// r.spacing of its head reference, so a group is prunable only when the
// reference is farther than dist + spacing from the query MBR. This prunes
// candidates whose *first point* is far away; trajectories can still reach
// the query with later points, so an additional MBR check refines
// per-trajectory (done by the callers) — matching REPOSE's trie + verify
// split.
func (r *REPOSE) groupsNear(qmbr geo.Rect, dist float64) [][]int {
	out := make([][]int, 0, len(r.byHead))
	for head, group := range r.byHead {
		ref := r.refs[head]
		if qmbr.MinDistToPoint(ref.X, ref.Y) <= dist+r.spacing {
			out = append(out, group)
		}
	}
	return out
}

// TopK implements Searcher with the same group pruning and an expanding
// bound.
func (r *REPOSE) TopK(query *model.Trajectory, m similarity.Measure, k int) ([]*model.Trajectory, Report) {
	started := time.Now()
	var rep Report
	if k <= 0 {
		return nil, rep
	}
	qmbr := query.MBR()
	type cand struct {
		lb  float64
		idx int
	}
	cands := make([]cand, 0, len(r.trajs))
	for idx, t := range r.trajs {
		if t.TID == query.TID {
			continue
		}
		cands = append(cands, cand{lb: entryLB(qmbr, r.mbrs[idx]), idx: idx})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lb < cands[j].lb })
	h := newTopKHeap(k)
	for _, c := range cands {
		if h.full() && c.lb > h.worst() {
			break
		}
		rep.Candidates++
		h.offer(similarity.Distance(m, query.Points, r.trajs[c.idx].Points), r.trajs[c.idx])
	}
	out := h.results()
	rep.Results = len(out)
	rep.Elapsed = time.Since(started) + r.overhead
	return out, rep
}

// ------------------------------------------------------------- helpers ---

type tkEntry struct {
	d float64
	t *model.Trajectory
}

type tkHeap []tkEntry

func (h tkHeap) Len() int            { return len(h) }
func (h tkHeap) Less(i, j int) bool  { return h[i].d > h[j].d }
func (h tkHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *tkHeap) Push(x interface{}) { *h = append(*h, x.(tkEntry)) }
func (h *tkHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

type topKHeap struct {
	k int
	h tkHeap
}

func newTopKHeap(k int) *topKHeap {
	t := &topKHeap{k: k}
	heap.Init(&t.h)
	return t
}

func (t *topKHeap) full() bool { return t.h.Len() >= t.k }

func (t *topKHeap) worst() float64 {
	if t.h.Len() == 0 {
		return math.Inf(1)
	}
	return t.h[0].d
}

// bound returns the current pruning bound: worst-of-k when full, else the
// fallback.
func (t *topKHeap) bound(fallback float64) float64 {
	if t.full() {
		return t.worst()
	}
	return fallback
}

func (t *topKHeap) offer(d float64, tr *model.Trajectory) {
	if t.h.Len() < t.k {
		heap.Push(&t.h, tkEntry{d: d, t: tr})
		return
	}
	if d < t.h[0].d {
		t.h[0] = tkEntry{d: d, t: tr}
		heap.Fix(&t.h, 0)
	}
}

func (t *topKHeap) results() []*model.Trajectory {
	out := make([]*model.Trajectory, t.h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&t.h).(tkEntry).t
	}
	return out
}
