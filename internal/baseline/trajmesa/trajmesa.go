// Package trajmesa reimplements the TrajMesa baseline (Li et al., TKDE
// 2021) at the level the TMan paper compares against:
//
//   - XZT temporal index with a long fixed period (two weeks);
//   - XZ-ordering spatial index;
//   - one full copy of every trajectory per index table (the redundant
//     multi-table storage the paper criticizes);
//   - client-side filtering: candidate rows are transferred in full and
//     refined outside the store (no push-down).
//
// The TMan-XZT / TMan-XZ ablations (same indexes inside TMan's engine with
// push-down) are expressed through engine.Config instead; this package is
// the end-to-end TrajMesa execution model.
package trajmesa

import (
	"time"

	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/compress"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/idt"
	"github.com/tman-db/tman/internal/index/xz2"
	"github.com/tman-db/tman/internal/index/xzt"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

// Config parameterizes the baseline.
type Config struct {
	Boundary        geo.Rect
	XZTPeriodMillis int64
	XZTG            int
	XZ2G            int
	Shards          int
	KV              kvstore.Options
}

// DefaultConfig mirrors TrajMesa's published defaults.
func DefaultConfig(boundary geo.Rect) Config {
	return Config{
		Boundary:        boundary,
		XZTPeriodMillis: 14 * 24 * 3600_000,
		XZTG:            16,
		XZ2G:            16,
		Shards:          4,
		KV:              kvstore.DefaultOptions(),
	}
}

// Store is a TrajMesa-style trajectory store.
type Store struct {
	cfg   Config
	store *kvstore.Store
	space *geo.Space

	xztIdx *xzt.Index
	xzIdx  *xz2.Index

	temporal *kvstore.Table // full rows keyed by XZT value
	spatial  *kvstore.Table // full rows keyed by XZ value
	idTable  *kvstore.Table // full rows keyed by oid::XZT value

	rows int64
}

// Report describes one query execution.
type Report struct {
	Candidates int64 // rows transferred before client-side filtering
	Results    int
	Elapsed    time.Duration
}

// New creates an empty TrajMesa store.
func New(cfg Config) (*Store, error) {
	space, err := geo.NewSpace(cfg.Boundary)
	if err != nil {
		return nil, err
	}
	xztIdx, err := xzt.New(cfg.XZTPeriodMillis, cfg.XZTG)
	if err != nil {
		return nil, err
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	s := &Store{
		cfg:    cfg,
		store:  kvstore.Open(cfg.KV),
		space:  space,
		xztIdx: xztIdx,
		xzIdx:  xz2.New(cfg.XZ2G),
	}
	s.temporal = s.store.OpenTable("xzt")
	s.spatial = s.store.OpenTable("xz2")
	s.idTable = s.store.OpenTable("idt")
	return s, nil
}

// Put stores a trajectory — three full copies, one per index table.
func (s *Store) Put(t *model.Trajectory) error {
	if err := t.Validate(); err != nil {
		return err
	}
	value := encodeValue(t)
	shard := codec.ShardOf(t.TID, s.cfg.Shards)
	tv := s.xztIdx.Encode(t.TimeRange())
	sv := s.xzIdx.Encode(s.space.NormalizeRect(t.MBR()))

	s.temporal.Put(codec.PrimaryKey(shard, tv, t.TID), value)
	s.spatial.Put(codec.PrimaryKey(shard, sv, t.TID), value)
	s.idTable.Put(codec.SecondaryKey(shard, idt.Key(t.OID, tv), t.TID), value)
	s.rows++
	return nil
}

// Rows returns the logical trajectory count (each stored three times).
func (s *Store) Rows() int64 { return s.rows }

// StorageBytes returns the approximate physical footprint across all index
// tables — the redundancy cost the paper highlights.
func (s *Store) StorageBytes() int {
	return s.temporal.ApproxSize() + s.spatial.ApproxSize() + s.idTable.ApproxSize()
}

// Stats exposes the KV-store counters.
func (s *Store) Stats() *kvstore.Stats { return s.store.Stats() }

// Compact runs a major compaction over all index tables.
func (s *Store) Compact() { s.store.CompactAll() }

// finish stamps a report with real elapsed time plus the simulated I/O
// accumulated by the underlying store since `before`.
func (s *Store) finish(rep *Report, started time.Time, before kvstore.Snapshot) {
	sim := s.store.Stats().Snapshot().SimIONanos - before.SimIONanos
	rep.Elapsed = time.Since(started) + time.Duration(sim)
}

// TemporalRangeQuery returns trajectories intersecting q, TrajMesa-style:
// scan XZT candidate ranges, transfer rows, filter client-side.
func (s *Store) TemporalRangeQuery(q model.TimeRange) ([]*model.Trajectory, Report) {
	started := time.Now()
	before := s.store.Stats().Snapshot()
	var rep Report
	if !q.Valid() {
		return nil, rep
	}
	var windows []kvstore.KeyRange
	for sh := 0; sh < s.cfg.Shards; sh++ {
		for _, r := range s.xztIdx.QueryRanges(q) {
			start, end := codec.RangeForIndexValues(byte(sh), r.Lo, r.Hi)
			windows = append(windows, kvstore.KeyRange{Start: start, End: end})
		}
	}
	kvs := s.temporal.ScanRanges(windows, nil, 0)
	rep.Candidates = int64(len(kvs))
	var out []*model.Trajectory
	for _, kv := range kvs {
		t, err := decodeValue(kv.Value)
		if err != nil {
			continue
		}
		if t.TimeRange().Intersects(q) {
			out = append(out, t)
		}
	}
	rep.Results = len(out)
	s.finish(&rep, started, before)
	return out, rep
}

// SpatialRangeQuery returns trajectories intersecting sr (dataset
// coordinates), scanning XZ candidate ranges and filtering client-side.
func (s *Store) SpatialRangeQuery(sr geo.Rect) ([]*model.Trajectory, Report) {
	started := time.Now()
	before := s.store.Stats().Snapshot()
	var rep Report
	if !sr.Valid() {
		return nil, rep
	}
	nsr := s.space.NormalizeRect(sr)
	var windows []kvstore.KeyRange
	for sh := 0; sh < s.cfg.Shards; sh++ {
		for _, r := range s.xzIdx.QueryRanges(nsr) {
			start, end := codec.RangeForIndexValues(byte(sh), r.Lo, r.Hi)
			windows = append(windows, kvstore.KeyRange{Start: start, End: end})
		}
	}
	kvs := s.spatial.ScanRanges(windows, nil, 0)
	rep.Candidates = int64(len(kvs))
	var out []*model.Trajectory
	for _, kv := range kvs {
		t, err := decodeValue(kv.Value)
		if err != nil {
			continue
		}
		if t.IntersectsRect(sr) {
			out = append(out, t)
		}
	}
	rep.Results = len(out)
	s.finish(&rep, started, before)
	return out, rep
}

// IDTemporalQuery returns the trajectories of an object intersecting q.
func (s *Store) IDTemporalQuery(oid string, q model.TimeRange) ([]*model.Trajectory, Report) {
	started := time.Now()
	before := s.store.Stats().Snapshot()
	var rep Report
	if !q.Valid() || oid == "" {
		return nil, rep
	}
	var windows []kvstore.KeyRange
	for sh := 0; sh < s.cfg.Shards; sh++ {
		for _, r := range s.xztIdx.QueryRanges(q) {
			lo := idt.Key(oid, r.Lo)
			var hi []byte
			if r.Hi == ^uint64(0) {
				hi = append(idt.Key(oid, r.Hi), 0xFF)
			} else {
				hi = idt.Key(oid, r.Hi+1)
			}
			windows = append(windows, kvstore.KeyRange{
				Start: append([]byte{byte(sh)}, lo...),
				End:   append([]byte{byte(sh)}, hi...),
			})
		}
	}
	kvs := s.idTable.ScanRanges(windows, nil, 0)
	rep.Candidates = int64(len(kvs))
	var out []*model.Trajectory
	for _, kv := range kvs {
		t, err := decodeValue(kv.Value)
		if err != nil {
			continue
		}
		if t.OID == oid && t.TimeRange().Intersects(q) {
			out = append(out, t)
		}
	}
	rep.Results = len(out)
	s.finish(&rep, started, before)
	return out, rep
}

// SpatioTemporalQuery combines the temporal index with client-side spatial
// refinement — TrajMesa's documented STRQ strategy of generating windows
// from the (long) time periods and filtering the rest.
func (s *Store) SpatioTemporalQuery(sr geo.Rect, q model.TimeRange) ([]*model.Trajectory, Report) {
	started := time.Now()
	before := s.store.Stats().Snapshot()
	var rep Report
	if !sr.Valid() || !q.Valid() {
		return nil, rep
	}
	temporal, trep := s.TemporalRangeQuery(q)
	rep.Candidates = trep.Candidates
	var out []*model.Trajectory
	for _, t := range temporal {
		if t.IntersectsRect(sr) {
			out = append(out, t)
		}
	}
	rep.Results = len(out)
	s.finish(&rep, started, before)
	return out, rep
}

// encodeValue stores the full trajectory (TrajMesa also compresses rows).
func encodeValue(t *model.Trajectory) []byte {
	out := compress.AppendUvarint(nil, uint64(len(t.OID)))
	out = append(out, t.OID...)
	out = compress.AppendUvarint(out, uint64(len(t.TID)))
	out = append(out, t.TID...)
	blob := compress.EncodePoints(t.Points)
	out = compress.AppendUvarint(out, uint64(len(blob)))
	return append(out, blob...)
}

func decodeValue(b []byte) (*model.Trajectory, error) {
	l, n := compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, model.ErrEmptyTrajectory
	}
	oid := string(b[n : n+int(l)])
	b = b[n+int(l):]
	l, n = compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, model.ErrEmptyTrajectory
	}
	tid := string(b[n : n+int(l)])
	b = b[n+int(l):]
	l, n = compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, model.ErrEmptyTrajectory
	}
	pts, err := compress.DecodePoints(b[n : n+int(l)])
	if err != nil {
		return nil, err
	}
	return &model.Trajectory{OID: oid, TID: tid, Points: pts}, nil
}
