package trajmesa

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/model"
)

var boundary = geo.Rect{MinX: 110, MinY: 35, MaxX: 125, MaxY: 45}

func genTraj(rng *rand.Rand, oid, tid string) *model.Trajectory {
	n := 5 + rng.Intn(30)
	pts := make([]model.Point, n)
	x := 110 + rng.Float64()*15
	y := 35 + rng.Float64()*10
	ts := int64(1_500_000_000_000) + rng.Int63n(14*24*3600_000)
	for i := range pts {
		x += (rng.Float64() - 0.5) * 0.02
		y += (rng.Float64() - 0.5) * 0.02
		ts += 60_000
		pts[i] = model.Point{X: clamp(x, 110, 125), Y: clamp(y, 35, 45), T: ts}
	}
	return &model.Trajectory{OID: oid, TID: tid, Points: pts}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func load(t *testing.T, n int, seed int64) (*Store, []*model.Trajectory) {
	t.Helper()
	s, err := New(DefaultConfig(boundary))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	trajs := make([]*model.Trajectory, 0, n)
	for i := 0; i < n; i++ {
		tr := genTraj(rng, fmt.Sprintf("o%d", i%10), fmt.Sprintf("t%05d", i))
		trajs = append(trajs, tr)
		if err := s.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	return s, trajs
}

func ids(ts []*model.Trajectory) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.TID
	}
	sort.Strings(out)
	return out
}

func TestQueriesMatchBruteForce(t *testing.T) {
	s, trajs := load(t, 300, 1)
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 15; iter++ {
		qs := int64(1_500_000_000_000) + rng.Int63n(14*24*3600_000)
		q := model.TimeRange{Start: qs, End: qs + rng.Int63n(12*3600_000)}
		cx := 110 + rng.Float64()*14
		cy := 35 + rng.Float64()*9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.5, MaxY: cy + 0.5}

		gotT, _ := s.TemporalRangeQuery(q)
		var wantT []string
		for _, tr := range trajs {
			if tr.TimeRange().Intersects(q) {
				wantT = append(wantT, tr.TID)
			}
		}
		sort.Strings(wantT)
		if fmt.Sprint(ids(gotT)) != fmt.Sprint(wantT) {
			t.Fatalf("TRQ iter %d mismatch: got %d want %d", iter, len(gotT), len(wantT))
		}

		gotS, _ := s.SpatialRangeQuery(sr)
		var wantS []string
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				wantS = append(wantS, tr.TID)
			}
		}
		sort.Strings(wantS)
		if fmt.Sprint(ids(gotS)) != fmt.Sprint(wantS) {
			t.Fatalf("SRQ iter %d mismatch: got %d want %d", iter, len(gotS), len(wantS))
		}

		gotST, _ := s.SpatioTemporalQuery(sr, q)
		var wantST []string
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) && tr.TimeRange().Intersects(q) {
				wantST = append(wantST, tr.TID)
			}
		}
		sort.Strings(wantST)
		if fmt.Sprint(ids(gotST)) != fmt.Sprint(wantST) {
			t.Fatalf("STRQ iter %d mismatch", iter)
		}

		oid := fmt.Sprintf("o%d", rng.Intn(10))
		gotID, _ := s.IDTemporalQuery(oid, q)
		var wantID []string
		for _, tr := range trajs {
			if tr.OID == oid && tr.TimeRange().Intersects(q) {
				wantID = append(wantID, tr.TID)
			}
		}
		sort.Strings(wantID)
		if fmt.Sprint(ids(gotID)) != fmt.Sprint(wantID) {
			t.Fatalf("IDT iter %d mismatch", iter)
		}
	}
}

func TestRedundantStorageCostsThreeCopies(t *testing.T) {
	s, _ := load(t, 200, 3)
	temporal := s.store.Table("xzt").ApproxSize()
	spatial := s.store.Table("xz2").ApproxSize()
	if temporal == 0 || spatial == 0 {
		t.Fatal("index tables empty")
	}
	total := s.StorageBytes()
	if total < 2*temporal {
		t.Errorf("multi-table storage %d not reflecting redundancy (single table %d)", total, temporal)
	}
}

func TestInvalidInputs(t *testing.T) {
	s, _ := load(t, 5, 4)
	if err := s.Put(&model.Trajectory{TID: "x"}); err == nil {
		t.Error("empty trajectory accepted")
	}
	if got, _ := s.TemporalRangeQuery(model.TimeRange{Start: 5, End: 1}); got != nil {
		t.Error("invalid time range returned rows")
	}
	if got, _ := s.IDTemporalQuery("", model.TimeRange{Start: 0, End: 1}); got != nil {
		t.Error("empty oid returned rows")
	}
}
