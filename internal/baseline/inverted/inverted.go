// Package inverted implements the inverted-cell-list ablation of the
// paper's Fig. 16 discussion: "instead of indexing a trajectory using a
// code, we use the inverted list of intersecting cells to store each
// trajectory, which requires more storage cost and brings more I/O cost.
// Moreover, it needs time to remove duplicates."
//
// Each trajectory is stored once per quad-tree cell (at its element's
// resolution) that it intersects; spatial queries scan the postings of all
// cells intersecting the window and deduplicate trajectory ids.
package inverted

import (
	"time"

	"github.com/tman-db/tman/internal/codec"
	"github.com/tman-db/tman/internal/compress"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

// Store is an inverted-cell-list trajectory store.
type Store struct {
	space *geo.Space
	g     int
	table *kvstore.Table
	kv    *kvstore.Store
	rows  int64
}

// Report describes a query execution.
type Report struct {
	Candidates int64 // postings scanned (before dedup)
	Results    int
	Elapsed    time.Duration
}

// New creates a store; g is the fixed cell resolution used for postings.
func New(boundary geo.Rect, g int, kvOpts kvstore.Options) (*Store, error) {
	space, err := geo.NewSpace(boundary)
	if err != nil {
		return nil, err
	}
	kv := kvstore.Open(kvOpts)
	return &Store{space: space, g: g, table: kv.OpenTable("cells"), kv: kv}, nil
}

// Put stores the trajectory under every resolution-g cell it intersects.
func (s *Store) Put(t *model.Trajectory) error {
	if err := t.Validate(); err != nil {
		return err
	}
	value := encodeValue(t)
	for _, c := range s.coveredCells(t) {
		key := codec.AppendUint64(nil, c.Code(s.g))
		key = append(key, 0x00)
		key = append(key, t.TID...)
		s.table.Put(key, value)
	}
	s.rows++
	return nil
}

// coveredCells returns the resolution-g cells intersected by the
// trajectory's segments.
func (s *Store) coveredCells(t *model.Trajectory) []quad.Cell {
	seen := map[uint64]quad.Cell{}
	mark := func(c quad.Cell) {
		seen[uint64(c.IX)<<32|uint64(c.IY)] = c
	}
	if len(t.Points) == 1 {
		nx, ny := s.space.Normalize(t.Points[0].X, t.Points[0].Y)
		mark(quad.CellAt(nx, ny, s.g))
	}
	px, py := 0.0, 0.0
	for i, p := range t.Points {
		nx, ny := s.space.Normalize(p.X, p.Y)
		if i > 0 {
			seg := geo.Segment{X1: px, Y1: py, X2: nx, Y2: ny}
			b := seg.Bounds()
			c0 := quad.CellAt(b.MinX, b.MinY, s.g)
			c1 := quad.CellAt(b.MaxX, b.MaxY, s.g)
			for ix := c0.IX; ix <= c1.IX; ix++ {
				for iy := c0.IY; iy <= c1.IY; iy++ {
					c := quad.Cell{IX: ix, IY: iy, R: s.g}
					if seg.IntersectsRect(c.Rect()) {
						mark(c)
					}
				}
			}
		}
		px, py = nx, ny
	}
	out := make([]quad.Cell, 0, len(seen))
	for _, c := range seen {
		out = append(out, c)
	}
	return out
}

// StorageBytes returns the approximate physical footprint (every posting
// holds a full trajectory copy).
func (s *Store) StorageBytes() int { return s.table.ApproxSize() }

// SpatialRangeQuery scans postings of cells intersecting sr, deduplicates,
// and refines with exact geometry.
func (s *Store) SpatialRangeQuery(sr geo.Rect) ([]*model.Trajectory, Report) {
	started := time.Now()
	before := s.kv.Stats().Snapshot()
	var rep Report
	if !sr.Valid() {
		return nil, rep
	}
	nsr := s.space.NormalizeRect(sr)
	c0 := quad.CellAt(nsr.MinX, nsr.MinY, s.g)
	c1 := quad.CellAt(nsr.MaxX, nsr.MaxY, s.g)
	var windows []kvstore.KeyRange
	for ix := c0.IX; ix <= c1.IX; ix++ {
		// Cells in one column of the query window have consecutive codes
		// only along quadrant boundaries; scan per cell for correctness.
		for iy := c0.IY; iy <= c1.IY; iy++ {
			code := quad.Cell{IX: ix, IY: iy, R: s.g}.Code(s.g)
			start := codec.AppendUint64(nil, code)
			start = append(start, 0x00)
			end := codec.AppendUint64(nil, code)
			end = append(end, 0x01)
			windows = append(windows, kvstore.KeyRange{Start: start, End: end})
		}
	}
	kvs := s.table.ScanRanges(windows, nil, 0)
	rep.Candidates = int64(len(kvs))
	seen := map[string]bool{}
	var out []*model.Trajectory
	for _, kv := range kvs {
		t, err := decodeValue(kv.Value)
		if err != nil {
			continue
		}
		if seen[t.TID] {
			continue // the dedup cost the paper calls out
		}
		seen[t.TID] = true
		if t.IntersectsRect(sr) {
			out = append(out, t)
		}
	}
	rep.Results = len(out)
	sim := s.kv.Stats().Snapshot().SimIONanos - before.SimIONanos
	rep.Elapsed = time.Since(started) + time.Duration(sim)
	return out, rep
}

func encodeValue(t *model.Trajectory) []byte {
	out := compress.AppendUvarint(nil, uint64(len(t.OID)))
	out = append(out, t.OID...)
	out = compress.AppendUvarint(out, uint64(len(t.TID)))
	out = append(out, t.TID...)
	blob := compress.EncodePoints(t.Points)
	out = compress.AppendUvarint(out, uint64(len(blob)))
	return append(out, blob...)
}

func decodeValue(b []byte) (*model.Trajectory, error) {
	l, n := compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, model.ErrEmptyTrajectory
	}
	oid := string(b[n : n+int(l)])
	b = b[n+int(l):]
	l, n = compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, model.ErrEmptyTrajectory
	}
	tid := string(b[n : n+int(l)])
	b = b[n+int(l):]
	l, n = compress.Uvarint(b)
	if n <= 0 || l > uint64(len(b)-n) {
		return nil, model.ErrEmptyTrajectory
	}
	pts, err := compress.DecodePoints(b[n : n+int(l)])
	if err != nil {
		return nil, err
	}
	return &model.Trajectory{OID: oid, TID: tid, Points: pts}, nil
}
