package inverted

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
)

var boundary = geo.Rect{MinX: 110, MinY: 35, MaxX: 125, MaxY: 45}

func TestSpatialQueryMatchesBruteForce(t *testing.T) {
	s, err := New(boundary, 10, kvstore.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var trajs []*model.Trajectory
	for i := 0; i < 200; i++ {
		n := 3 + rng.Intn(30)
		pts := make([]model.Point, n)
		x := 110 + rng.Float64()*15
		y := 35 + rng.Float64()*10
		for j := range pts {
			x += (rng.Float64() - 0.5) * 0.05
			y += (rng.Float64() - 0.5) * 0.05
			pts[j] = model.Point{X: x, Y: y, T: int64(j) * 1000}
		}
		tr := &model.Trajectory{OID: "o", TID: fmt.Sprintf("t%04d", i), Points: pts}
		trajs = append(trajs, tr)
		if err := s.Put(tr); err != nil {
			t.Fatal(err)
		}
	}
	for iter := 0; iter < 15; iter++ {
		cx := 110 + rng.Float64()*14
		cy := 35 + rng.Float64()*9
		sr := geo.Rect{MinX: cx, MinY: cy, MaxX: cx + 0.5, MaxY: cy + 0.5}
		got, rep := s.SpatialRangeQuery(sr)
		var want []string
		for _, tr := range trajs {
			if tr.IntersectsRect(sr) {
				want = append(want, tr.TID)
			}
		}
		gotIDs := make([]string, len(got))
		for i, g := range got {
			gotIDs[i] = g.TID
		}
		sort.Strings(gotIDs)
		sort.Strings(want)
		if fmt.Sprint(gotIDs) != fmt.Sprint(want) {
			t.Fatalf("iter %d: got %d, want %d", iter, len(gotIDs), len(want))
		}
		if rep.Candidates < int64(len(want)) {
			t.Errorf("candidates below results")
		}
	}
}

func TestDuplicatedStorage(t *testing.T) {
	s, _ := New(boundary, 8, kvstore.DefaultOptions())
	// One long trajectory crosses many cells: storage multiplies.
	pts := make([]model.Point, 50)
	for i := range pts {
		pts[i] = model.Point{X: 110 + float64(i)*0.2, Y: 40, T: int64(i) * 1000}
	}
	tr := &model.Trajectory{OID: "o", TID: "long", Points: pts}
	if err := s.Put(tr); err != nil {
		t.Fatal(err)
	}
	// The query window covers the whole path; dedup must collapse the many
	// postings to one result.
	got, rep := s.SpatialRangeQuery(geo.Rect{MinX: 110, MinY: 39.5, MaxX: 120.5, MaxY: 40.5})
	if len(got) != 1 {
		t.Fatalf("dedup failed: %d results", len(got))
	}
	if rep.Candidates < 10 {
		t.Errorf("expected many postings for a long trajectory, got %d", rep.Candidates)
	}
	cells := s.coveredCells(tr)
	if len(cells) < 10 {
		t.Errorf("long trajectory covered only %d cells", len(cells))
	}
}
