package geo

import "fmt"

// Space maps dataset coordinates (typically lng/lat degrees) onto the unit
// square [0,1] x [0,1] in which all of TMan's spatial index math operates.
//
// The mapping is a per-axis affine transform over the dataset's spatial
// boundary. Points outside the boundary are clamped so that index values
// remain well defined for slightly out-of-range data.
type Space struct {
	boundary Rect
	invW     float64
	invH     float64
}

// NewSpace creates a Space over the given dataset boundary. The boundary
// must be a valid rectangle with positive extent on both axes.
func NewSpace(boundary Rect) (*Space, error) {
	if !boundary.Valid() {
		return nil, fmt.Errorf("geo: invalid boundary %v", boundary)
	}
	if boundary.Width() <= 0 || boundary.Height() <= 0 {
		return nil, fmt.Errorf("geo: boundary must have positive extent, got %v", boundary)
	}
	return &Space{
		boundary: boundary,
		invW:     1 / boundary.Width(),
		invH:     1 / boundary.Height(),
	}, nil
}

// MustSpace is NewSpace that panics on error, for use with static boundaries.
func MustSpace(boundary Rect) *Space {
	s, err := NewSpace(boundary)
	if err != nil {
		panic(err)
	}
	return s
}

// Boundary returns the dataset boundary this space was built over.
func (s *Space) Boundary() Rect { return s.boundary }

// Normalize maps a dataset coordinate to the unit square, clamping values
// outside the boundary to [0, 1].
func (s *Space) Normalize(x, y float64) (nx, ny float64) {
	nx = (x - s.boundary.MinX) * s.invW
	ny = (y - s.boundary.MinY) * s.invH
	return clamp01(nx), clamp01(ny)
}

// Denormalize maps a unit-square coordinate back to dataset coordinates.
func (s *Space) Denormalize(nx, ny float64) (x, y float64) {
	return s.boundary.MinX + nx*s.boundary.Width(), s.boundary.MinY + ny*s.boundary.Height()
}

// NormalizeRect maps a dataset rectangle to the unit square.
func (s *Space) NormalizeRect(r Rect) Rect {
	x1, y1 := s.Normalize(r.MinX, r.MinY)
	x2, y2 := s.Normalize(r.MaxX, r.MaxY)
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

// DenormalizeRect maps a unit-square rectangle back to dataset coordinates.
func (s *Space) DenormalizeRect(r Rect) Rect {
	x1, y1 := s.Denormalize(r.MinX, r.MinY)
	x2, y2 := s.Denormalize(r.MaxX, r.MaxY)
	return Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
