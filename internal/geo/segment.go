package geo

import "math"

// Segment is a directed line segment from (X1, Y1) to (X2, Y2).
type Segment struct {
	X1, Y1, X2, Y2 float64
}

// Bounds returns the bounding rectangle of s.
func (s Segment) Bounds() Rect {
	return NewRect(s.X1, s.Y1, s.X2, s.Y2)
}

// IntersectsRect reports whether the segment shares at least one point with
// the closed rectangle r. It uses the Liang-Barsky parametric clip, which
// handles degenerate (zero-length) segments as points.
func (s Segment) IntersectsRect(r Rect) bool {
	// Quick accept: either endpoint inside.
	if r.ContainsPoint(s.X1, s.Y1) || r.ContainsPoint(s.X2, s.Y2) {
		return true
	}
	// Quick reject: bounding boxes disjoint.
	if !s.Bounds().Intersects(r) {
		return false
	}
	dx := s.X2 - s.X1
	dy := s.Y2 - s.Y1
	if dx == 0 && dy == 0 {
		return r.ContainsPoint(s.X1, s.Y1)
	}
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	if !clip(-dx, s.X1-r.MinX) {
		return false
	}
	if !clip(dx, r.MaxX-s.X1) {
		return false
	}
	if !clip(-dy, s.Y1-r.MinY) {
		return false
	}
	if !clip(dy, r.MaxY-s.Y1) {
		return false
	}
	return t0 <= t1
}

// PointSegmentDist returns the Euclidean distance from point (px, py) to the
// closest point of segment s.
func PointSegmentDist(px, py float64, s Segment) float64 {
	dx := s.X2 - s.X1
	dy := s.Y2 - s.Y1
	l2 := dx*dx + dy*dy
	if l2 == 0 {
		return dist(px, py, s.X1, s.Y1)
	}
	t := ((px-s.X1)*dx + (py-s.Y1)*dy) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return dist(px, py, s.X1+t*dx, s.Y1+t*dy)
}

func dist(x1, y1, x2, y2 float64) float64 {
	dx := x1 - x2
	dy := y1 - y2
	// math.Hypot is robust but slow; coordinates here are normalized to
	// [0,1] so plain multiplication cannot overflow.
	return math.Sqrt(dx*dx + dy*dy)
}
