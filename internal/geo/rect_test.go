package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRectOrdersCorners(t *testing.T) {
	r := NewRect(5, 7, 1, 2)
	want := Rect{MinX: 1, MinY: 2, MaxX: 5, MaxY: 7}
	if r != want {
		t.Fatalf("NewRect = %v, want %v", r, want)
	}
}

func TestRectValid(t *testing.T) {
	cases := []struct {
		name string
		r    Rect
		want bool
	}{
		{"normal", Rect{0, 0, 1, 1}, true},
		{"point", Rect{2, 3, 2, 3}, true},
		{"inverted-x", Rect{1, 0, 0, 1}, false},
		{"inverted-y", Rect{0, 1, 1, 0}, false},
		{"nan", Rect{math.NaN(), 0, 1, 1}, false},
		{"inf", Rect{0, 0, math.Inf(1), 1}, false},
	}
	for _, tc := range cases {
		if got := tc.r.Valid(); got != tc.want {
			t.Errorf("%s: Valid() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlap", Rect{1, 1, 3, 3}, true},
		{"contained", Rect{0.5, 0.5, 1.5, 1.5}, true},
		{"touch-edge", Rect{2, 0, 3, 2}, true},
		{"touch-corner", Rect{2, 2, 3, 3}, true},
		{"disjoint-x", Rect{2.1, 0, 3, 1}, false},
		{"disjoint-y", Rect{0, 2.1, 1, 3}, false},
	}
	for _, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("%s: Intersects = %v, want %v", tc.name, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("%s: Intersects not symmetric", tc.name)
		}
	}
}

func TestRectContains(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	if !a.Contains(Rect{1, 1, 2, 2}) {
		t.Error("should contain inner rect")
	}
	if !a.Contains(a) {
		t.Error("should contain itself")
	}
	if a.Contains(Rect{1, 1, 5, 2}) {
		t.Error("should not contain rect crossing boundary")
	}
	if !a.ContainsPoint(0, 0) || !a.ContainsPoint(4, 4) {
		t.Error("boundary points should be contained")
	}
	if a.ContainsPoint(4.001, 2) {
		t.Error("outside point should not be contained")
	}
}

func TestRectUnionIntersection(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 4}
	u := a.Union(b)
	if u != (Rect{0, 0, 3, 4}) {
		t.Errorf("Union = %v", u)
	}
	inter, ok := a.Intersection(b)
	if !ok || inter != (Rect{1, 1, 2, 2}) {
		t.Errorf("Intersection = %v, ok=%v", inter, ok)
	}
	if _, ok := a.Intersection(Rect{5, 5, 6, 6}); ok {
		t.Error("disjoint rects should have no intersection")
	}
}

func TestRectDistances(t *testing.T) {
	r := Rect{0, 0, 2, 2}
	if d := r.MinDistToPoint(1, 1); d != 0 {
		t.Errorf("inside point MinDist = %g", d)
	}
	if d := r.MinDistToPoint(5, 2); d != 3 {
		t.Errorf("MinDist right = %g, want 3", d)
	}
	if d := r.MinDistToPoint(5, 6); math.Abs(d-5) > 1e-12 {
		t.Errorf("MinDist diagonal = %g, want 5", d)
	}
	if d := r.MaxDistToPoint(0, 0); math.Abs(d-math.Sqrt(8)) > 1e-12 {
		t.Errorf("MaxDist corner = %g", d)
	}
	if d := r.MinDist(Rect{5, 2, 6, 3}); d != 3 {
		t.Errorf("rect MinDist = %g, want 3", d)
	}
	if d := r.MinDist(Rect{1, 1, 5, 5}); d != 0 {
		t.Errorf("overlapping rect MinDist = %g, want 0", d)
	}
}

// Property: Union contains both inputs; Intersection (when non-empty) is
// contained in both inputs; Intersects agrees with Intersection's ok flag.
func TestRectAlgebraProperties(t *testing.T) {
	f := func(x1, y1, x2, y2, x3, y3, x4, y4 float64) bool {
		a := NewRect(norm(x1), norm(y1), norm(x2), norm(y2))
		b := NewRect(norm(x3), norm(y3), norm(x4), norm(y4))
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		inter, ok := a.Intersection(b)
		if ok != a.Intersects(b) {
			return false
		}
		if ok && (!a.Contains(inter) || !b.Contains(inter)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// norm maps an arbitrary float into a sane finite range for property tests.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1000)
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	cases := []struct {
		name string
		s    Segment
		want bool
	}{
		{"inside", Segment{1.5, 1.5, 2.5, 2.5}, true},
		{"crossing", Segment{0, 2, 4, 2}, true},
		{"diagonal-through", Segment{0, 0, 4, 4}, true},
		{"clip-corner", Segment{0, 2, 2, 4}, true},
		{"pass-above-corner", Segment{0, 2.5, 1.5, 4}, false},
		{"miss-above", Segment{0, 3.5, 4, 3.6}, false},
		{"miss-diagonal", Segment{0, 2.8, 0.9, 4}, false},
		{"touch-edge", Segment{0, 1, 4, 1}, true},
		{"degenerate-in", Segment{2, 2, 2, 2}, true},
		{"degenerate-out", Segment{0, 0, 0, 0}, false},
		{"endpoint-on-corner", Segment{3, 3, 5, 5}, true},
	}
	for _, tc := range cases {
		if got := tc.s.IntersectsRect(r); got != tc.want {
			t.Errorf("%s: IntersectsRect = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// Property: IntersectsRect agrees with a sampling-based oracle for random
// segments and rectangles.
func TestSegmentIntersectsRectAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := NewRect(rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64())
		s := Segment{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		got := s.IntersectsRect(r)
		// Sampling oracle: walk the segment densely. It can only prove
		// intersection, never absence, so check one direction strictly and
		// use distance reasoning for the other.
		oracle := false
		const steps = 400
		for k := 0; k <= steps; k++ {
			t := float64(k) / steps
			x := s.X1 + t*(s.X2-s.X1)
			y := s.Y1 + t*(s.Y2-s.Y1)
			if r.ContainsPoint(x, y) {
				oracle = true
				break
			}
		}
		if oracle && !got {
			t.Fatalf("iter %d: sampling found intersection but IntersectsRect=false (r=%v s=%+v)", i, r, s)
		}
		if got && !oracle {
			// The clip may legitimately find grazing intersections the
			// sampler misses; verify the segment passes within a half step
			// of the rectangle.
			minD := math.Inf(1)
			for k := 0; k <= steps; k++ {
				t := float64(k) / steps
				x := s.X1 + t*(s.X2-s.X1)
				y := s.Y1 + t*(s.Y2-s.Y1)
				if d := r.MinDistToPoint(x, y); d < minD {
					minD = d
				}
			}
			if minD > 0.01 {
				t.Fatalf("iter %d: IntersectsRect=true but segment stays %g away (r=%v s=%+v)", i, minD, r, s)
			}
		}
	}
}

func TestPointSegmentDist(t *testing.T) {
	s := Segment{0, 0, 2, 0}
	if d := PointSegmentDist(1, 1, s); d != 1 {
		t.Errorf("perpendicular = %g, want 1", d)
	}
	if d := PointSegmentDist(3, 0, s); d != 1 {
		t.Errorf("beyond-end = %g, want 1", d)
	}
	if d := PointSegmentDist(-1, 0, s); d != 1 {
		t.Errorf("before-start = %g, want 1", d)
	}
	if d := PointSegmentDist(1, 0, s); d != 0 {
		t.Errorf("on-segment = %g, want 0", d)
	}
	deg := Segment{1, 1, 1, 1}
	if d := PointSegmentDist(1, 2, deg); d != 1 {
		t.Errorf("degenerate = %g, want 1", d)
	}
}

func TestSpaceNormalizeRoundTrip(t *testing.T) {
	sp, err := NewSpace(Rect{110, 35, 125, 45})
	if err != nil {
		t.Fatal(err)
	}
	x, y := sp.Normalize(117.5, 40)
	if math.Abs(x-0.5) > 1e-12 || math.Abs(y-0.5) > 1e-12 {
		t.Errorf("Normalize center = (%g,%g)", x, y)
	}
	bx, by := sp.Denormalize(x, y)
	if math.Abs(bx-117.5) > 1e-9 || math.Abs(by-40) > 1e-9 {
		t.Errorf("round trip = (%g,%g)", bx, by)
	}
	// Clamping.
	x, y = sp.Normalize(200, -10)
	if x != 1 || y != 0 {
		t.Errorf("clamped = (%g,%g), want (1,0)", x, y)
	}
}

func TestSpaceRejectsDegenerateBoundary(t *testing.T) {
	if _, err := NewSpace(Rect{0, 0, 0, 1}); err == nil {
		t.Error("zero-width boundary should be rejected")
	}
	if _, err := NewSpace(Rect{1, 0, 0, 1}); err == nil {
		t.Error("inverted boundary should be rejected")
	}
}

func TestSpaceNormalizeRectMonotone(t *testing.T) {
	sp := MustSpace(Rect{70, 0, 140, 55})
	f := func(x1, y1, x2, y2 float64) bool {
		r := NewRect(70+math.Mod(math.Abs(norm(x1)), 70), math.Mod(math.Abs(norm(y1)), 55),
			70+math.Mod(math.Abs(norm(x2)), 70), math.Mod(math.Abs(norm(y2)), 55))
		n := sp.NormalizeRect(r)
		if !n.Valid() {
			return false
		}
		back := sp.DenormalizeRect(n)
		return math.Abs(back.MinX-r.MinX) < 1e-9 && math.Abs(back.MaxY-r.MaxY) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
