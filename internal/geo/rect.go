// Package geo provides planar geometry primitives used by TMan's spatial
// indexes: axis-aligned rectangles, segments, and the normalized unit space
// onto which a dataset's spatial boundary is mapped.
//
// All index math in TMan (XZ-ordering, XZ*, TShape) is defined on the unit
// square [0,1] x [0,1]; Space performs the affine mapping between dataset
// coordinates (typically lng/lat) and normalized coordinates.
package geo

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle. MinX/MinY is the lower-left corner and
// MaxX/MaxY the upper-right corner. A Rect with Min == Max is a point and is
// considered valid; rectangles are closed on all sides.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x1, y1, x2, y2 float64) Rect {
	return Rect{
		MinX: math.Min(x1, x2),
		MinY: math.Min(y1, y2),
		MaxX: math.Max(x1, x2),
		MaxY: math.Max(y1, y2),
	}
}

// Valid reports whether r is a well-formed rectangle (Min <= Max on both
// axes and all coordinates are finite).
func (r Rect) Valid() bool {
	if math.IsNaN(r.MinX) || math.IsNaN(r.MinY) || math.IsNaN(r.MaxX) || math.IsNaN(r.MaxY) {
		return false
	}
	if math.IsInf(r.MinX, 0) || math.IsInf(r.MinY, 0) || math.IsInf(r.MaxX, 0) || math.IsInf(r.MaxY, 0) {
		return false
	}
	return r.MinX <= r.MaxX && r.MinY <= r.MaxY
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of r.
func (r Rect) Center() (x, y float64) {
	return (r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2
}

// Intersects reports whether r and o share at least one point (closed
// rectangles: touching edges intersect).
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Contains reports whether o lies entirely within r (boundaries included).
func (r Rect) Contains(o Rect) bool {
	return r.MinX <= o.MinX && o.MaxX <= r.MaxX && r.MinY <= o.MinY && o.MaxY <= r.MaxY
}

// ContainsPoint reports whether the point (x, y) lies within r
// (boundaries included).
func (r Rect) ContainsPoint(x, y float64) bool {
	return r.MinX <= x && x <= r.MaxX && r.MinY <= y && y <= r.MaxY
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, o.MinX),
		MinY: math.Min(r.MinY, o.MinY),
		MaxX: math.Max(r.MaxX, o.MaxX),
		MaxY: math.Max(r.MaxY, o.MaxY),
	}
}

// Intersection returns the overlap of r and o and whether it is non-empty.
func (r Rect) Intersection(o Rect) (Rect, bool) {
	out := Rect{
		MinX: math.Max(r.MinX, o.MinX),
		MinY: math.Max(r.MinY, o.MinY),
		MaxX: math.Min(r.MaxX, o.MaxX),
		MaxY: math.Min(r.MaxY, o.MaxY),
	}
	if out.MinX > out.MaxX || out.MinY > out.MaxY {
		return Rect{}, false
	}
	return out, true
}

// Expand returns r grown by d on every side. A negative d shrinks the
// rectangle; the result may become invalid if shrunk past its center.
func (r Rect) Expand(d float64) Rect {
	return Rect{MinX: r.MinX - d, MinY: r.MinY - d, MaxX: r.MaxX + d, MaxY: r.MaxY + d}
}

// MinDistToPoint returns the minimum Euclidean distance from the point
// (x, y) to any point of r. It is zero when the point is inside r.
func (r Rect) MinDistToPoint(x, y float64) float64 {
	dx := math.Max(0, math.Max(r.MinX-x, x-r.MaxX))
	dy := math.Max(0, math.Max(r.MinY-y, y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MaxDistToPoint returns the maximum Euclidean distance from the point
// (x, y) to any point of r (attained at one of the four corners).
func (r Rect) MaxDistToPoint(x, y float64) float64 {
	dx := math.Max(math.Abs(x-r.MinX), math.Abs(x-r.MaxX))
	dy := math.Max(math.Abs(y-r.MinY), math.Abs(y-r.MaxY))
	return math.Hypot(dx, dy)
}

// MinDist returns the minimum Euclidean distance between any point of r and
// any point of o. It is zero when the rectangles intersect.
func (r Rect) MinDist(o Rect) float64 {
	dx := math.Max(0, math.Max(o.MinX-r.MaxX, r.MinX-o.MaxX))
	dy := math.Max(0, math.Max(o.MinY-r.MaxY, r.MinY-o.MaxY))
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("Rect(%g,%g,%g,%g)", r.MinX, r.MinY, r.MaxX, r.MaxY)
}
