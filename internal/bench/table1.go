package bench

import (
	"fmt"
	"time"

	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/workload"
)

// Table1TemporalIndexes reproduces Table I: temporal range query time and
// candidate counts on Lorry for the XZT index and TR with periods of 10
// and 30 minutes and 1, 2, 4, 6 and 8 hours, across query windows from 5
// minutes to 24 hours.
func Table1TemporalIndexes(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)

	type variant struct {
		name   string
		mutate func(*engine.Config)
	}
	trVariant := func(name string, period int64) variant {
		return variant{name: name, mutate: func(c *engine.Config) {
			c.Temporal = engine.KindTR
			c.Primary = engine.KindTR // temporal index under test is primary
			c.PeriodMillis = period
			// N scales with the period so the bin budget still covers 48h.
			n := int(48 * hourMs / period)
			if n < 1 {
				n = 1
			}
			c.N = n
		}}
	}
	variants := []variant{
		{name: "XZT", mutate: func(c *engine.Config) {
			c.Temporal = engine.KindXZT
			c.Primary = engine.KindXZT
		}},
		trVariant("TR-10M", 10*minuteMs),
		trVariant("TR-30M", 30*minuteMs),
		trVariant("TR-1H", hourMs),
		trVariant("TR-2H", 2*hourMs),
		trVariant("TR-4H", 4*hourMs),
		trVariant("TR-6H", 6*hourMs),
		trVariant("TR-8H", 8*hourMs),
	}
	windows := []struct {
		label string
		dur   int64
	}{
		{"5m", 5 * minuteMs}, {"10m", 10 * minuteMs}, {"30m", 30 * minuteMs},
		{"1h", hourMs}, {"6h", 6 * hourMs}, {"12h", 12 * hourMs}, {"24h", 24 * hourMs},
	}

	type rowResult struct {
		times []time.Duration
		cands []int64
	}
	results := make([]rowResult, len(variants))

	for vi, v := range variants {
		e, err := buildTMan(lorry, v.mutate)
		if err != nil {
			return fmt.Errorf("%s: %w", v.name, err)
		}
		for _, w := range windows {
			sampler := workload.NewQuerySampler(lorry, opts.Seed+11)
			var m measured
			for q := 0; q < opts.Queries; q++ {
				tw := sampler.TimeWindow(w.dur)
				_, rep, err := e.TemporalRangeQuery(tw)
				if err != nil {
					return err
				}
				m.add(rep.Elapsed, rep.Candidates)
			}
			results[vi].times = append(results[vi].times, m.time(opts.Percentile))
			results[vi].cands = append(results[vi].cands, m.candidates(opts.Percentile))
		}
	}

	fmt.Fprintln(opts.Out, "Query time (ms) by window")
	cols := []string{"index"}
	for _, w := range windows {
		cols = append(cols, w.label)
	}
	header(opts.Out, cols...)
	for vi, v := range variants {
		cell(opts.Out, v.name)
		for _, d := range results[vi].times {
			cell(opts.Out, fmtDur(d))
		}
		endRow(opts.Out)
	}
	fmt.Fprintln(opts.Out, "\nCandidates (#) by window")
	header(opts.Out, cols...)
	for vi, v := range variants {
		cell(opts.Out, v.name)
		for _, c := range results[vi].cands {
			cell(opts.Out, c)
		}
		endRow(opts.Out)
	}
	return nil
}
