package bench

import (
	"fmt"
	"time"

	"github.com/tman-db/tman/internal/baseline/sthadoop"
	"github.com/tman-db/tman/internal/baseline/trajmesa"
	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/workload"
)

// Fig22Scalability reproduces Fig. 22: (a) TRQ/SRQ query time as the Lorry
// dataset is replicated 1×–8× for TMan, TrajMesa and STH, with STH hitting
// its memory budget at larger scales (the paper's Lorry-6 OOM); (b) batch
// update (insert) throughput into an existing TMan table.
func Fig22Scalability(opts Options) error {
	opts.sanitize()
	base := workload.TLorrySim(opts.LorrySize/2, opts.Seed)
	factors := []int{1, 2, 4, 8}

	fmt.Fprintln(opts.Out, "(a) Query time vs data size (TRQ 1h / SRQ 1.5km)")
	header(opts.Out, "scale", "tman_trq", "tman_srq", "trajmesa_trq", "trajmesa_srq", "sth_trq", "sth_srq")
	for _, f := range factors {
		ds := workload.Replicate(base, f, opts.Seed+int64(f))

		// TMan deploys a primary table per hot query type (Section IV-B):
		// TRQ runs against a temporal-primary engine, SRQ against the
		// default spatial-primary engine.
		tmanT, err := buildTMan(ds, func(c *engine.Config) { c.Primary = engine.KindTR })
		if err != nil {
			return err
		}
		tmanS, err := buildTMan(ds, nil)
		if err != nil {
			return err
		}
		tm, err := trajmesa.New(trajmesa.DefaultConfig(ds.Boundary))
		if err != nil {
			return err
		}
		for _, t := range ds.Trajs {
			if err := tm.Put(t); err != nil {
				return err
			}
		}
		sthCfg := sthadoop.DefaultConfig(ds.Boundary)
		// Memory budget sized so STH fails around the upper scales, as in
		// the paper's Lorry-6 observation.
		sthCfg.MaxMemoryPoints = int64(opts.LorrySize) * 20
		sth := sthadoop.New(sthCfg)
		for _, t := range ds.Trajs {
			if err := sth.Put(t); err != nil {
				return err
			}
		}

		sampler := workload.NewQuerySampler(ds, opts.Seed+37)
		var mTmanT, mTmanS, mTmT, mTmS, mSthT, mSthS measured
		sthOOM := false
		for q := 0; q < opts.Queries; q++ {
			tw := sampler.TimeWindow(hourMs)
			sr := sampler.SpaceWindow(1.5)

			_, rep, _ := tmanT.TemporalRangeQuery(tw)
			mTmanT.add(rep.Elapsed, rep.Candidates)
			_, rep, _ = tmanS.SpatialRangeQuery(sr)
			mTmanS.add(rep.Elapsed, rep.Candidates)

			_, trep := tm.TemporalRangeQuery(tw)
			mTmT.add(trep.Elapsed, trep.Candidates)
			_, trep = tm.SpatialRangeQuery(sr)
			mTmS.add(trep.Elapsed, trep.Candidates)

			_, srep := sth.TemporalRangeQuery(tw)
			if srep.OOM {
				sthOOM = true
			}
			mSthT.add(srep.Elapsed, srep.Candidates)
			_, srep = sth.SpatialRangeQuery(sr)
			if srep.OOM {
				sthOOM = true
			}
			mSthS.add(srep.Elapsed, srep.Candidates)
		}
		cell(opts.Out, fmt.Sprintf("x%d", f))
		cell(opts.Out, fmtDur(mTmanT.time(opts.Percentile)))
		cell(opts.Out, fmtDur(mTmanS.time(opts.Percentile)))
		cell(opts.Out, fmtDur(mTmT.time(opts.Percentile)))
		cell(opts.Out, fmtDur(mTmS.time(opts.Percentile)))
		if sthOOM {
			cell(opts.Out, "OOM")
			cell(opts.Out, "OOM")
		} else {
			cell(opts.Out, fmtDur(mSthT.time(opts.Percentile)))
			cell(opts.Out, fmtDur(mSthS.time(opts.Percentile)))
		}
		endRow(opts.Out)
	}

	// (b) Batch insert into an existing table.
	fmt.Fprintln(opts.Out, "\n(b) Batch update: insert throughput into a loaded table")
	header(opts.Out, "batch", "tman_ms", "trajs_per_s")
	loaded, err := buildTMan(base, nil)
	if err != nil {
		return err
	}
	extra := workload.TLorrySim(opts.LorrySize/2, opts.Seed+99)
	batchSizes := []int{100, 500, 1000, 2000}
	offset := 0
	for _, b := range batchSizes {
		if offset+b > len(extra.Trajs) {
			break
		}
		batch := extra.Trajs[offset : offset+b]
		offset += b
		start := time.Now()
		if err := loaded.BatchPut(batch); err != nil {
			return err
		}
		elapsed := time.Since(start)
		cell(opts.Out, b)
		cell(opts.Out, fmtDur(elapsed))
		cell(opts.Out, fmt.Sprintf("%.0f", float64(b)/elapsed.Seconds()))
		endRow(opts.Out)
	}
	return nil
}
