package bench

import (
	"fmt"

	"github.com/tman-db/tman/internal/baseline/trajmesa"
	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/workload"
)

// Fig23TailLatency reproduces Fig. 23: TRQ and SRQ latency at the 50th,
// 70th, 80th, 90th and 100th percentiles for TMan and TrajMesa on Lorry.
func Fig23TailLatency(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)

	tmanT, err := buildTMan(lorry, func(c *engine.Config) { c.Primary = engine.KindTR })
	if err != nil {
		return err
	}
	tmanS, err := buildTMan(lorry, nil)
	if err != nil {
		return err
	}
	tm, err := trajmesa.New(trajmesa.DefaultConfig(lorry.Boundary))
	if err != nil {
		return err
	}
	for _, t := range lorry.Trajs {
		if err := tm.Put(t); err != nil {
			return err
		}
	}
	tm.Compact()

	queries := opts.Queries * 3 // tail percentiles need more samples
	sampler := workload.NewQuerySampler(lorry, opts.Seed+41)
	var tmanTRQ, tmanSRQ, tmTRQ, tmSRQ measured
	for q := 0; q < queries; q++ {
		tw := sampler.TimeWindow(hourMs)
		sr := sampler.SpaceWindow(1.5)
		_, rep, _ := tmanT.TemporalRangeQuery(tw)
		tmanTRQ.add(rep.Elapsed, rep.Candidates)
		_, rep, _ = tmanS.SpatialRangeQuery(sr)
		tmanSRQ.add(rep.Elapsed, rep.Candidates)
		_, trep := tm.TemporalRangeQuery(tw)
		tmTRQ.add(trep.Elapsed, trep.Candidates)
		_, trep = tm.SpatialRangeQuery(sr)
		tmSRQ.add(trep.Elapsed, trep.Candidates)
	}

	percentiles := []float64{0.5, 0.7, 0.8, 0.9, 1.0}
	cols := []string{"system"}
	for _, p := range percentiles {
		cols = append(cols, fmt.Sprintf("p%.0f", p*100))
	}
	fmt.Fprintln(opts.Out, "(a) TRQ latency (ms) by percentile")
	header(opts.Out, cols...)
	for _, row := range []struct {
		name string
		m    *measured
	}{{"TMan", &tmanTRQ}, {"TrajMesa", &tmTRQ}} {
		cell(opts.Out, row.name)
		for _, p := range percentiles {
			cell(opts.Out, fmtDur(row.m.time(p)))
		}
		endRow(opts.Out)
	}
	fmt.Fprintln(opts.Out, "\n(b) SRQ latency (ms) by percentile")
	header(opts.Out, cols...)
	for _, row := range []struct {
		name string
		m    *measured
	}{{"TMan", &tmanSRQ}, {"TrajMesa", &tmSRQ}} {
		cell(opts.Out, row.name)
		for _, p := range percentiles {
			cell(opts.Out, fmtDur(row.m.time(p)))
		}
		endRow(opts.Out)
	}
	return nil
}
