package bench

import (
	"fmt"

	"github.com/tman-db/tman/internal/similarity"
	"github.com/tman-db/tman/internal/workload"
)

// Fig21TopK reproduces Fig. 21: top-k similarity search on Lorry for TMan,
// TraSS, DFT, DITA and REPOSE, sweeping k.
func Fig21TopK(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)
	systems, err := buildSimSystems(lorry)
	if err != nil {
		return err
	}
	ks := []int{5, 10, 20, 50}
	queries := opts.Queries
	if queries > 8 {
		queries = 8
	}
	cols := []string{"system"}
	for _, k := range ks {
		cols = append(cols, fmt.Sprintf("k=%d", k))
	}
	fmt.Fprintln(opts.Out, "Top-k query time (ms), Fréchet")
	header(opts.Out, cols...)
	for _, sys := range systems {
		cell(opts.Out, sys.name)
		for _, k := range ks {
			sampler := workload.NewQuerySampler(lorry, opts.Seed+int64(k))
			var m measured
			for q := 0; q < queries; q++ {
				query := sampler.QueryTrajectory()
				d, c := sys.topk(query, similarity.Frechet, k)
				m.add(d, c)
			}
			cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		}
		endRow(opts.Out)
	}
	return nil
}
