package bench

import (
	"fmt"
	"sort"
	"time"

	"github.com/tman-db/tman/internal/baseline/inverted"
	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/workload"
)

// Fig16Encodings reproduces Fig. 16:
//
//	(a) the distribution of used shapes per enlarged element (5×5 cells);
//	(b) SRQ time by shape-encoding method — genetic, greedy, bitmap, no
//	    index cache, XZ* (2×2) and the inverted cell list;
//	(c) storage (ingest) time by method.
func Fig16Encodings(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)

	// (a) Used shapes per element at alpha=beta=5.
	shapeCounts := map[uint64]map[uint64]struct{}{}
	{
		cfg := engine.DefaultConfig(lorry.Boundary)
		cfg.Alpha, cfg.Beta = 5, 5
		cfg.G = 16
		ts, err := tshapeIndexFor(cfg, lorry)
		if err != nil {
			return err
		}
		for _, t := range lorry.Trajs {
			elem, bits := ts.EncodeRaw(t)
			if shapeCounts[elem] == nil {
				shapeCounts[elem] = map[uint64]struct{}{}
			}
			shapeCounts[elem][bits] = struct{}{}
		}
	}
	var counts []int
	maxShapes := 0
	for _, s := range shapeCounts {
		counts = append(counts, len(s))
		if len(s) > maxShapes {
			maxShapes = len(s)
		}
	}
	sort.Ints(counts)
	fmt.Fprintln(opts.Out, "(a) Used shapes per enlarged element (5x5)")
	header(opts.Out, "stat", "value")
	for _, st := range []struct {
		name string
		v    int
	}{
		{"elements", len(counts)},
		{"p50_shapes", counts[len(counts)/2]},
		{"p90_shapes", counts[idxFor(len(counts), 0.9)]},
		{"p99_shapes", counts[idxFor(len(counts), 0.99)]},
		{"max_shapes", maxShapes},
	} {
		cell(opts.Out, st.name)
		cell(opts.Out, st.v)
		endRow(opts.Out)
	}
	under10 := 0
	for _, c := range counts {
		if c < 10 {
			under10++
		}
	}
	fmt.Fprintf(opts.Out, "elements with <10 shapes: %.1f%%\n", 100*float64(under10)/float64(len(counts)))

	// (b)(c) Encoding methods: ingest time and SRQ time.
	type method struct {
		name   string
		mutate func(*engine.Config)
	}
	methods := []method{
		{"genetic", func(c *engine.Config) { c.Encoding = tshape.EncodingGenetic; c.BufferThreshold = 8 }},
		{"greedy", func(c *engine.Config) { c.Encoding = tshape.EncodingGreedy; c.BufferThreshold = 8 }},
		{"bitmap", func(c *engine.Config) { c.Encoding = tshape.EncodingBitmap; c.BufferThreshold = 8 }},
		{"no-cache", func(c *engine.Config) { c.UseIndexCache = false }},
		{"xz*-2x2", func(c *engine.Config) { c.Alpha, c.Beta = 2, 2; c.UseIndexCache = false }},
	}
	fmt.Fprintln(opts.Out, "\n(b)(c) Encoding methods (SRQ 1.5km x 1.5km)")
	header(opts.Out, "method", "query_ms", "candidates", "ingest_ms")
	for _, meth := range methods {
		ingestStart := time.Now()
		e, err := buildTMan(lorry, meth.mutate)
		if err != nil {
			return fmt.Errorf("%s: %w", meth.name, err)
		}
		ingest := time.Since(ingestStart)
		sampler := workload.NewQuerySampler(lorry, opts.Seed+11)
		var m measured
		for q := 0; q < opts.Queries; q++ {
			sr := sampler.SpaceWindow(1.5)
			_, rep, err := e.SpatialRangeQuery(sr)
			if err != nil {
				return err
			}
			m.add(rep.Elapsed, rep.Candidates)
		}
		cell(opts.Out, meth.name)
		cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		cell(opts.Out, m.candidates(opts.Percentile))
		cell(opts.Out, fmtDur(ingest))
		endRow(opts.Out)
	}

	// Inverted cell list baseline.
	{
		ingestStart := time.Now()
		inv, err := inverted.New(lorry.Boundary, 14, kvstore.DefaultOptions())
		if err != nil {
			return err
		}
		for _, t := range lorry.Trajs {
			if err := inv.Put(t); err != nil {
				return err
			}
		}
		ingest := time.Since(ingestStart)
		sampler := workload.NewQuerySampler(lorry, opts.Seed+11)
		var m measured
		for q := 0; q < opts.Queries; q++ {
			sr := sampler.SpaceWindow(1.5)
			_, rep := inv.SpatialRangeQuery(sr)
			m.add(rep.Elapsed, rep.Candidates)
		}
		cell(opts.Out, "inverted")
		cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		cell(opts.Out, m.candidates(opts.Percentile))
		cell(opts.Out, fmtDur(ingest))
		endRow(opts.Out)
	}
	return nil
}

// tshapeIndexFor builds a standalone TShape index matching a config (used
// for shape statistics without a full engine ingest).
func tshapeIndexFor(cfg engine.Config, ds *workload.Dataset) (*tshape.Index, error) {
	space, err := geoSpace(ds)
	if err != nil {
		return nil, err
	}
	return tshape.New(tshape.Params{Alpha: cfg.Alpha, Beta: cfg.Beta, G: cfg.G}, space)
}
