package bench

import (
	"fmt"

	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/workload"
)

// Fig15AlphaBeta reproduces Fig. 15: the effect of the enlarged-element
// dimensions α×β (2×2 through 5×5) on spatial range queries of
// 1.5km × 1.5km over Lorry — candidates visited and query time.
func Fig15AlphaBeta(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)

	grids := [][2]int{{2, 2}, {2, 3}, {3, 3}, {3, 4}, {4, 4}, {4, 5}, {5, 5}}
	header(opts.Out, "alpha*beta", "time_ms", "candidates", "windows")
	for _, g := range grids {
		e, err := buildTMan(lorry, func(c *engine.Config) {
			c.Alpha = g[0]
			c.Beta = g[1]
		})
		if err != nil {
			return fmt.Errorf("%dx%d: %w", g[0], g[1], err)
		}
		sampler := workload.NewQuerySampler(lorry, opts.Seed+7)
		var m measured
		var windows int64
		for q := 0; q < opts.Queries; q++ {
			sr := sampler.SpaceWindow(1.5)
			_, rep, err := e.SpatialRangeQuery(sr)
			if err != nil {
				return err
			}
			m.add(rep.Elapsed, rep.Candidates)
			windows += int64(rep.Windows)
		}
		cell(opts.Out, fmt.Sprintf("%dx%d", g[0], g[1]))
		cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		cell(opts.Out, m.candidates(opts.Percentile))
		cell(opts.Out, windows/int64(opts.Queries))
		endRow(opts.Out)
	}
	return nil
}
