package bench

import (
	"time"

	"github.com/tman-db/tman/internal/baseline/simbase"
	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
	"github.com/tman-db/tman/internal/workload"
)

// simSystem is one system under similarity comparison.
type simSystem struct {
	name      string
	threshold func(q *model.Trajectory, m similarity.Measure, theta float64) (time.Duration, int64)
	topk      func(q *model.Trajectory, m similarity.Measure, k int) (time.Duration, int64)
}

// buildSimSystems creates TMan, TraSS (TShape 2×2 without index cache,
// matching the paper's equivalence note), DFT, DITA and REPOSE over a
// dataset.
func buildSimSystems(ds *workload.Dataset) ([]simSystem, error) {
	var systems []simSystem

	tman, err := buildTMan(ds, nil)
	if err != nil {
		return nil, err
	}
	systems = append(systems, engineSimSystem("TMan", tman))

	trass, err := buildTMan(ds, func(c *engine.Config) {
		c.Alpha, c.Beta = 2, 2
		c.UseIndexCache = false
	})
	if err != nil {
		return nil, err
	}
	systems = append(systems, engineSimSystem("TraSS", trass))

	dft := simbase.NewDFT(ds.Trajs, ds.Boundary, 32, 2)
	dita := simbase.NewDITA(ds.Trajs, ds.Boundary, 32, 4)
	repose := simbase.NewREPOSE(ds.Trajs, ds.Boundary, 64)
	for _, s := range []simbase.Searcher{dft, dita, repose} {
		s := s
		// Every query on a Spark-style in-memory system is a distributed
		// job; charge the scheduling overhead the original systems report.
		s.SetJobOverhead(40 * time.Millisecond)
		systems = append(systems, simSystem{
			name: s.Name(),
			threshold: func(q *model.Trajectory, m similarity.Measure, theta float64) (time.Duration, int64) {
				// The in-memory baselines work in dataset coordinates;
				// convert the normalized theta to degrees using the wider
				// boundary axis, as the paper's theta convention does.
				scale := ds.Boundary.Width()
				if h := ds.Boundary.Height(); h > scale {
					scale = h
				}
				_, rep := s.Threshold(q, m, theta*scale)
				return rep.Elapsed, int64(rep.Candidates)
			},
			topk: func(q *model.Trajectory, m similarity.Measure, k int) (time.Duration, int64) {
				_, rep := s.TopK(q, m, k)
				return rep.Elapsed, int64(rep.Candidates)
			},
		})
	}
	return systems, nil
}

func engineSimSystem(name string, e *engine.Engine) simSystem {
	return simSystem{
		name: name,
		threshold: func(q *model.Trajectory, m similarity.Measure, theta float64) (time.Duration, int64) {
			_, rep, _ := e.SimilarityThresholdQuery(q, m, theta)
			return rep.Elapsed, rep.Candidates
		},
		topk: func(q *model.Trajectory, m similarity.Measure, k int) (time.Duration, int64) {
			_, rep, _ := e.SimilarityTopKQuery(q, m, k)
			return rep.Elapsed, rep.Candidates
		},
	}
}

// Fig20ThresholdSim reproduces Fig. 20: threshold similarity queries on
// Lorry with θ = 0.015 under Fréchet, DTW and Hausdorff, for TMan, TraSS,
// DFT and DITA.
func Fig20ThresholdSim(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)
	systems, err := buildSimSystems(lorry)
	if err != nil {
		return err
	}
	measures := []similarity.Measure{similarity.Frechet, similarity.DTW, similarity.Hausdorff}
	queries := opts.Queries
	if queries > 10 {
		queries = 10 // exact similarity is O(n·m); keep runs bounded
	}
	header(opts.Out, "system", "frechet_ms", "dtw_ms", "hausdorff_ms", "candidates")
	for _, sys := range systems {
		if sys.name == "repose" {
			continue // the paper's Fig. 20 compares TMan/TraSS/DFT/DITA
		}
		var cands int64
		var cols []string
		for _, m := range measures {
			sampler := workload.NewQuerySampler(lorry, opts.Seed+31)
			var meas measured
			for q := 0; q < queries; q++ {
				query := sampler.QueryTrajectory()
				theta := 0.015
				if m == similarity.DTW {
					theta = 0.25 // DTW accumulates; same convention as tests
				}
				d, c := sys.threshold(query, m, theta)
				meas.add(d, c)
			}
			cols = append(cols, fmtDur(meas.time(opts.Percentile)))
			cands = meas.candidates(opts.Percentile)
		}
		cell(opts.Out, sys.name)
		for _, c := range cols {
			cell(opts.Out, c)
		}
		cell(opts.Out, cands)
		endRow(opts.Out)
	}
	return nil
}
