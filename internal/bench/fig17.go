package bench

import (
	"fmt"
	"time"

	"github.com/tman-db/tman/internal/baseline/sthadoop"
	"github.com/tman-db/tman/internal/baseline/trajmesa"
	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/workload"
)

// geoSpace builds a Space over a dataset boundary.
func geoSpace(ds *workload.Dataset) (*geo.Space, error) {
	return geo.NewSpace(ds.Boundary)
}

// systems under comparison for the range-query figures.
type rangeSystem struct {
	name string
	trq  func(q timeRangeQ) (int64, int64) // -> (elapsed µs, candidates)
	srq  func(sr geo.Rect) (int64, int64)
	strq func(sr geo.Rect, q timeRangeQ) (int64, int64)
	idt  func(oid string, q timeRangeQ) (int64, int64)
}

type timeRangeQ = struct{ Start, End int64 }

// buildRangeSystems creates TMan, TMan-XZT/TMan-XZ ablations, TrajMesa and
// ST-Hadoop over one dataset.
// When temporalPrimary is set, the TMan engines key their primary tables by
// the temporal index — the configuration a TRQ-heavy deployment would use
// (paper Section IV-B).
func buildRangeSystems(ds *workload.Dataset, withSTH, temporalPrimary bool) ([]rangeSystem, error) {
	var systems []rangeSystem

	tman, err := buildTMan(ds, func(c *engine.Config) {
		if temporalPrimary {
			c.Primary = engine.KindTR
		}
	})
	if err != nil {
		return nil, err
	}
	systems = append(systems, engineSystem("TMan", tman))

	tmanXZT, err := buildTMan(ds, func(c *engine.Config) {
		c.Temporal = engine.KindXZT
		if temporalPrimary {
			c.Primary = engine.KindXZT
		}
	})
	if err != nil {
		return nil, err
	}
	systems = append(systems, engineSystem("TMan-XZT", tmanXZT))

	tmanXZ, err := buildTMan(ds, func(c *engine.Config) {
		c.Spatial = engine.KindXZ2
		if temporalPrimary {
			c.Primary = engine.KindTR
		}
	})
	if err != nil {
		return nil, err
	}
	systems = append(systems, engineSystem("TMan-XZ", tmanXZ))

	tm, err := trajmesa.New(trajmesa.DefaultConfig(ds.Boundary))
	if err != nil {
		return nil, err
	}
	for _, t := range ds.Trajs {
		if err := tm.Put(t); err != nil {
			return nil, err
		}
	}
	tm.Compact()
	systems = append(systems, rangeSystem{
		name: "TrajMesa",
		trq: func(q timeRangeQ) (int64, int64) {
			_, rep := tm.TemporalRangeQuery(q)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
		srq: func(sr geo.Rect) (int64, int64) {
			_, rep := tm.SpatialRangeQuery(sr)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
		strq: func(sr geo.Rect, q timeRangeQ) (int64, int64) {
			_, rep := tm.SpatioTemporalQuery(sr, q)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
		idt: func(oid string, q timeRangeQ) (int64, int64) {
			_, rep := tm.IDTemporalQuery(oid, q)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
	})

	if withSTH {
		sth := sthadoop.New(sthadoop.DefaultConfig(ds.Boundary))
		for _, t := range ds.Trajs {
			if err := sth.Put(t); err != nil {
				return nil, err
			}
		}
		systems = append(systems, rangeSystem{
			name: "STH",
			trq: func(q timeRangeQ) (int64, int64) {
				_, rep := sth.TemporalRangeQuery(q)
				return rep.Elapsed.Microseconds(), rep.Candidates
			},
			srq: func(sr geo.Rect) (int64, int64) {
				_, rep := sth.SpatialRangeQuery(sr)
				return rep.Elapsed.Microseconds(), rep.Candidates
			},
			strq: func(sr geo.Rect, q timeRangeQ) (int64, int64) {
				_, rep := sth.SpatioTemporalQuery(sr, q)
				return rep.Elapsed.Microseconds(), rep.Candidates
			},
		})
	}
	return systems, nil
}

func engineSystem(name string, e *engine.Engine) rangeSystem {
	return rangeSystem{
		name: name,
		trq: func(q timeRangeQ) (int64, int64) {
			_, rep, _ := e.TemporalRangeQuery(q)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
		srq: func(sr geo.Rect) (int64, int64) {
			_, rep, _ := e.SpatialRangeQuery(sr)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
		strq: func(sr geo.Rect, q timeRangeQ) (int64, int64) {
			_, rep, _ := e.SpatioTemporalQuery(sr, q)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
		idt: func(oid string, q timeRangeQ) (int64, int64) {
			_, rep, _ := e.IDTemporalQuery(oid, q)
			return rep.Elapsed.Microseconds(), rep.Candidates
		},
	}
}

// Fig17TRQ reproduces Fig. 17: temporal range query time and candidates on
// TDrive and Lorry for TMan (TR index), TMan-XZT, TrajMesa and STH.
// Candidates for STH are points (the paper's Fig. 17(b) note).
func Fig17TRQ(opts Options) error {
	opts.sanitize()
	datasets := []*workload.Dataset{
		workload.TDriveSim(opts.TDriveSize, opts.Seed),
		workload.TLorrySim(opts.LorrySize, opts.Seed+1),
	}
	windows := []struct {
		label string
		dur   int64
	}{
		{"5m", 5 * minuteMs}, {"30m", 30 * minuteMs}, {"1h", hourMs},
		{"6h", 6 * hourMs}, {"12h", 12 * hourMs}, {"24h", 24 * hourMs},
	}
	for _, ds := range datasets {
		fmt.Fprintf(opts.Out, "dataset: %s (%d trajectories)\n", ds.Name, len(ds.Trajs))
		systems, err := buildRangeSystems(ds, true, true)
		if err != nil {
			return err
		}
		cols := []string{"system"}
		for _, w := range windows {
			cols = append(cols, w.label)
		}
		timeRows := make([][]string, len(systems))
		candRows := make([][]string, len(systems))
		for si, sys := range systems {
			for _, w := range windows {
				sampler := workload.NewQuerySampler(ds, opts.Seed+13)
				var m measured
				for q := 0; q < opts.Queries; q++ {
					tw := sampler.TimeWindow(w.dur)
					us, cand := sys.trq(timeRangeQ{Start: tw.Start, End: tw.End})
					m.add(durMicros(us), cand)
				}
				timeRows[si] = append(timeRows[si], fmtDur(m.time(opts.Percentile)))
				candRows[si] = append(candRows[si], fmt.Sprint(m.candidates(opts.Percentile)))
			}
		}
		fmt.Fprintln(opts.Out, "(a) Query time (ms)")
		header(opts.Out, cols...)
		for si, sys := range systems {
			cell(opts.Out, sys.name)
			for _, v := range timeRows[si] {
				cell(opts.Out, v)
			}
			endRow(opts.Out)
		}
		fmt.Fprintln(opts.Out, "(b) Candidates (# trajectories; points for STH)")
		header(opts.Out, cols...)
		for si, sys := range systems {
			cell(opts.Out, sys.name)
			for _, v := range candRows[si] {
				cell(opts.Out, v)
			}
			endRow(opts.Out)
		}
		fmt.Fprintln(opts.Out)
	}
	return nil
}

// durMicros converts microseconds to a time.Duration.
func durMicros(us int64) time.Duration { return time.Duration(us) * time.Microsecond }
