package bench

import (
	"fmt"

	"github.com/tman-db/tman/internal/baseline/segment"
	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/workload"
)

// AblationStorage compares TMan's intact-row storage against the VRE-style
// segment model the paper argues against (Sections I / II-1): temporal
// range queries over stores that segment trajectories every 10, 30 and 60
// minutes versus one intact row per trajectory. Reported are query time,
// segment-level candidates, reassembly counts and physical storage.
func AblationStorage(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)

	// Intact rows: TMan with a temporal primary.
	tman, err := buildTMan(lorry, func(c *engine.Config) { c.Primary = engine.KindTR })
	if err != nil {
		return err
	}

	durations := []struct {
		label string
		d     int64
	}{
		{"seg-10m", 10 * minuteMs},
		{"seg-30m", 30 * minuteMs},
		{"seg-1h", hourMs},
	}

	header(opts.Out, "store", "trq_ms", "candidates", "reassembled", "storage_mb")
	// TMan row.
	{
		sampler := workload.NewQuerySampler(lorry, opts.Seed+43)
		var m measured
		for q := 0; q < opts.Queries; q++ {
			tw := sampler.TimeWindow(hourMs)
			_, rep, err := tman.TemporalRangeQuery(tw)
			if err != nil {
				return err
			}
			m.add(rep.Elapsed, rep.Candidates)
		}
		cell(opts.Out, "tman-intact")
		cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		cell(opts.Out, m.candidates(opts.Percentile))
		cell(opts.Out, 0)
		cell(opts.Out, fmt.Sprintf("%.1f", float64(tman.Store().Table("primary").ApproxSize())/(1<<20)))
		endRow(opts.Out)
	}

	for _, dur := range durations {
		st := segment.New(dur.d, kvstore.DefaultOptions())
		for _, t := range lorry.Trajs {
			if err := st.Put(t); err != nil {
				return err
			}
		}
		sampler := workload.NewQuerySampler(lorry, opts.Seed+43)
		var m measured
		var reassembled int64
		for q := 0; q < opts.Queries; q++ {
			tw := sampler.TimeWindow(hourMs)
			_, rep := st.TemporalRangeQuery(tw)
			m.add(rep.Elapsed, rep.Candidates)
			reassembled += int64(rep.Reassembled)
		}
		cell(opts.Out, dur.label)
		cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		cell(opts.Out, m.candidates(opts.Percentile))
		cell(opts.Out, reassembled/int64(opts.Queries))
		cell(opts.Out, fmt.Sprintf("%.1f", float64(st.StorageBytes())/(1<<20)))
		endRow(opts.Out)
	}
	fmt.Fprintf(opts.Out, "\nsegment counts: ")
	for _, dur := range durations {
		st := segment.New(dur.d, kvstore.NoNetworkOptions())
		for _, t := range lorry.Trajs[:min(len(lorry.Trajs), 2000)] {
			_ = st.Put(t)
		}
		fmt.Fprintf(opts.Out, "%s=%.2fx  ", dur.label, float64(st.Segments())/float64(st.Trajs()))
	}
	fmt.Fprintln(opts.Out)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
