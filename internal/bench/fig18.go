package bench

import (
	"fmt"

	"github.com/tman-db/tman/internal/workload"
)

// Fig18SRQ reproduces Fig. 18: spatial range query time and candidates on
// TDrive and Lorry for TMan (TShape), TMan-XZ, TrajMesa and STH, with
// windows from 100m × 100m to 2500m × 2500m.
func Fig18SRQ(opts Options) error {
	opts.sanitize()
	datasets := []*workload.Dataset{
		workload.TDriveSim(opts.TDriveSize, opts.Seed),
		workload.TLorrySim(opts.LorrySize, opts.Seed+1),
	}
	windows := []struct {
		label string
		km    float64
	}{
		{"100m", 0.1}, {"500m", 0.5}, {"1000m", 1.0}, {"1500m", 1.5}, {"2500m", 2.5},
	}
	for _, ds := range datasets {
		fmt.Fprintf(opts.Out, "dataset: %s (%d trajectories)\n", ds.Name, len(ds.Trajs))
		systems, err := buildRangeSystems(ds, true, false)
		if err != nil {
			return err
		}
		cols := []string{"system"}
		for _, w := range windows {
			cols = append(cols, w.label)
		}
		timeRows := make([][]string, len(systems))
		candRows := make([][]string, len(systems))
		for si, sys := range systems {
			for _, w := range windows {
				sampler := workload.NewQuerySampler(ds, opts.Seed+17)
				var m measured
				for q := 0; q < opts.Queries; q++ {
					sr := sampler.SpaceWindow(w.km)
					us, cand := sys.srq(sr)
					m.add(durMicros(us), cand)
				}
				timeRows[si] = append(timeRows[si], fmtDur(m.time(opts.Percentile)))
				candRows[si] = append(candRows[si], fmt.Sprint(m.candidates(opts.Percentile)))
			}
		}
		fmt.Fprintln(opts.Out, "(a) Query time (ms)")
		header(opts.Out, cols...)
		for si, sys := range systems {
			cell(opts.Out, sys.name)
			for _, v := range timeRows[si] {
				cell(opts.Out, v)
			}
			endRow(opts.Out)
		}
		fmt.Fprintln(opts.Out, "(b) Candidates (# trajectories; points for STH)")
		header(opts.Out, cols...)
		for si, sys := range systems {
			cell(opts.Out, sys.name)
			for _, v := range candRows[si] {
				cell(opts.Out, v)
			}
			endRow(opts.Out)
		}
		fmt.Fprintln(opts.Out)
	}
	return nil
}
