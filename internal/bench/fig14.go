package bench

import (
	"fmt"

	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/quad"
	"github.com/tman-db/tman/internal/workload"
)

// Fig14Distributions reproduces Fig. 14: the CDF of trajectory time ranges
// for TDrive and Lorry (a, b), and the fraction of trajectories per TShape
// resolution with α = β = 5 (c, d).
func Fig14Distributions(opts Options) error {
	opts.sanitize()
	tdrive := workload.TDriveSim(opts.TDriveSize, opts.Seed)
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed+1)

	fmt.Fprintln(opts.Out, "(a)(b) Time-range CDF (% of trajectories with duration <= bound)")
	bounds := []int64{30 * minuteMs, hourMs, 2 * hourMs, 4 * hourMs, 8 * hourMs, 14 * hourMs, 18 * hourMs, 24 * hourMs, 48 * hourMs}
	header(opts.Out, "bound", "tdrive_%", "lorry_%")
	for _, b := range bounds {
		cell(opts.Out, fmt.Sprintf("%dh%02dm", b/hourMs, (b%hourMs)/minuteMs))
		for _, ds := range []*workload.Dataset{tdrive, lorry} {
			n := 0
			for _, t := range ds.Trajs {
				if t.TimeRange().Duration() <= b {
					n++
				}
			}
			cell(opts.Out, fmt.Sprintf("%.1f", 100*float64(n)/float64(len(ds.Trajs))))
		}
		endRow(opts.Out)
	}

	fmt.Fprintln(opts.Out, "\n(c)(d) Resolution histogram (alpha=beta=5, % of trajectories)")
	header(opts.Out, "resolution", "tdrive_%", "lorry_%")
	hist := func(ds *workload.Dataset) map[int]int {
		space := geo.MustSpace(ds.Boundary)
		out := map[int]int{}
		for _, t := range ds.Trajs {
			mbr := space.NormalizeRect(t.MBR())
			out[quad.ResolutionForExtent(mbr.Width(), mbr.Height(), 5, 5, 16)]++
		}
		return out
	}
	ht, hl := hist(tdrive), hist(lorry)
	for r := 0; r <= 16; r++ {
		if ht[r] == 0 && hl[r] == 0 {
			continue
		}
		cell(opts.Out, r)
		cell(opts.Out, fmt.Sprintf("%.1f", 100*float64(ht[r])/float64(len(tdrive.Trajs))))
		cell(opts.Out, fmt.Sprintf("%.1f", 100*float64(hl[r])/float64(len(lorry.Trajs))))
		endRow(opts.Out)
	}
	return nil
}
