// Package bench regenerates every table and figure of the paper's
// evaluation (Section VI) on the synthetic TDrive/Lorry workloads.
//
// Each experiment is a function taking Options and printing the same rows
// or series the paper reports. Absolute numbers differ from the paper (the
// substrate is an embedded simulator, not a five-node HBase cluster); the
// comparisons — which system wins, by roughly what factor, where the
// crossovers fall — are the reproduction target and are recorded in
// EXPERIMENTS.md.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/workload"
)

// Options configures the experiment scale.
type Options struct {
	// TDriveSize and LorrySize are trajectory counts for the two synthetic
	// datasets (the paper's originals hold 318k and 2.6M; defaults are
	// laptop-scale).
	TDriveSize int
	LorrySize  int
	// Queries is the number of random query windows per measurement (the
	// paper uses 100 and reports the median).
	Queries int
	// Percentile of the query-time distribution to report (0.5 = median).
	Percentile float64
	// Seed drives all data and query generation.
	Seed int64
	// Out receives the printed tables (default os.Stdout).
	Out io.Writer
}

// DefaultOptions returns laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		TDriveSize: 6000,
		LorrySize:  10000,
		Queries:    20,
		Percentile: 0.5,
		Seed:       42,
		Out:        os.Stdout,
	}
}

func (o *Options) sanitize() {
	d := DefaultOptions()
	if o.TDriveSize <= 0 {
		o.TDriveSize = d.TDriveSize
	}
	if o.LorrySize <= 0 {
		o.LorrySize = d.LorrySize
	}
	if o.Queries <= 0 {
		o.Queries = d.Queries
	}
	if o.Percentile <= 0 || o.Percentile > 1 {
		o.Percentile = d.Percentile
	}
	if o.Out == nil {
		o.Out = os.Stdout
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
}

// Experiments maps experiment ids to runners, in paper order.
var Experiments = []struct {
	Name string
	Desc string
	Run  func(Options) error
}{
	{"fig14", "dataset distributions (time-range CDF, resolution histogram)", Fig14Distributions},
	{"table1", "temporal index comparison: XZT vs TR-{10M..8H} (Lorry)", Table1TemporalIndexes},
	{"fig15", "effect of TShape α×β on SRQ (Lorry, 1.5km)", Fig15AlphaBeta},
	{"fig16", "shape usage + encoding methods: query and storage cost (Lorry)", Fig16Encodings},
	{"fig17", "temporal range queries vs baselines (TDrive + Lorry)", Fig17TRQ},
	{"fig18", "spatial range queries vs baselines (TDrive + Lorry)", Fig18SRQ},
	{"fig19", "IDT and spatio-temporal range queries (Lorry)", Fig19IDTSTRQ},
	{"fig20", "threshold similarity queries (Lorry, θ=0.015)", Fig20ThresholdSim},
	{"fig21", "top-k similarity queries (Lorry)", Fig21TopK},
	{"fig22", "scalability: data size and batch update (Lorry-i)", Fig22Scalability},
	{"fig23", "tail latency percentiles for TRQ and SRQ (Lorry)", Fig23TailLatency},
	{"ablation1", "intact-row vs VRE-style segment storage (extra ablation)", AblationStorage},
}

// Run executes one experiment by name ("all" runs everything).
func Run(name string, opts Options) error {
	opts.sanitize()
	if name == "all" {
		for _, e := range Experiments {
			fmt.Fprintf(opts.Out, "\n================ %s: %s ================\n", e.Name, e.Desc)
			if err := e.Run(opts); err != nil {
				return fmt.Errorf("%s: %w", e.Name, err)
			}
		}
		return nil
	}
	for _, e := range Experiments {
		if e.Name == name {
			return e.Run(opts)
		}
	}
	return fmt.Errorf("bench: unknown experiment %q", name)
}

// ---------------------------------------------------------------- utils ---

const (
	minuteMs = int64(60_000)
	hourMs   = int64(3600_000)
)

// measured is one (time, candidates) sample series.
type measured struct {
	times []time.Duration
	cands []int64
}

func (m *measured) add(d time.Duration, c int64) {
	m.times = append(m.times, d)
	m.cands = append(m.cands, c)
}

// percentile returns the p-quantile of the samples.
func (m *measured) time(p float64) time.Duration {
	if len(m.times) == 0 {
		return 0
	}
	ts := append([]time.Duration(nil), m.times...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts[idxFor(len(ts), p)]
}

func (m *measured) candidates(p float64) int64 {
	if len(m.cands) == 0 {
		return 0
	}
	cs := append([]int64(nil), m.cands...)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs[idxFor(len(cs), p)]
}

func idxFor(n int, p float64) int {
	i := int(p * float64(n))
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// buildTMan creates a TMan engine over a dataset and ingests it. mutate may
// adjust the default configuration (ablations).
func buildTMan(ds *workload.Dataset, mutate func(*engine.Config)) (*engine.Engine, error) {
	cfg := engine.DefaultConfig(ds.Boundary)
	if mutate != nil {
		mutate(&cfg)
	}
	e, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.BatchPut(ds.Trajs); err != nil {
		return nil, err
	}
	// Benchmarks measure the steady state after a major compaction.
	e.Store().CompactAll()
	return e, nil
}

// fmtDur prints a duration in milliseconds with two decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000)
}

// header prints a padded table header row.
func header(w io.Writer, cols ...string) {
	for _, c := range cols {
		fmt.Fprintf(w, "%-14s", c)
	}
	fmt.Fprintln(w)
}

func cell(w io.Writer, v interface{}) {
	fmt.Fprintf(w, "%-14v", v)
}

func endRow(w io.Writer) { fmt.Fprintln(w) }
