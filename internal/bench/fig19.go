package bench

import (
	"fmt"
	"sort"

	"github.com/tman-db/tman/internal/workload"
)

// Fig19IDTSTRQ reproduces Fig. 19: (a) ID-temporal queries on TMan and
// TrajMesa (the only baseline supporting them), preceded by the
// trajectories-per-object distribution the paper reports; (b)
// spatio-temporal range queries combining the Fig. 17/18 window
// dimensions for TMan, TMan-XZ, TrajMesa and STH.
func Fig19IDTSTRQ(opts Options) error {
	opts.sanitize()
	lorry := workload.TLorrySim(opts.LorrySize, opts.Seed)

	// Trajectories-per-object distribution.
	perObj := map[string]int{}
	for _, t := range lorry.Trajs {
		perObj[t.OID]++
	}
	counts := make([]int, 0, len(perObj))
	for _, c := range perObj {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	fmt.Fprintf(opts.Out, "objects: %d, median trajectories/object: %d, p90: %d\n\n",
		len(counts), counts[len(counts)/2], counts[idxFor(len(counts), 0.9)])

	systems, err := buildRangeSystems(lorry, true, false)
	if err != nil {
		return err
	}

	// (a) IDT queries over 12h ranges.
	fmt.Fprintln(opts.Out, "(a) ID-temporal query (12h ranges)")
	header(opts.Out, "system", "time_ms", "candidates")
	for _, sys := range systems {
		if sys.idt == nil {
			continue // STH does not support IDT (as in the paper)
		}
		sampler := workload.NewQuerySampler(lorry, opts.Seed+23)
		var m measured
		for q := 0; q < opts.Queries; q++ {
			oid, tw := sampler.ObjectWindow(12 * hourMs)
			us, cand := sys.idt(oid, timeRangeQ{Start: tw.Start, End: tw.End})
			m.add(durMicros(us), cand)
		}
		cell(opts.Out, sys.name)
		cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		cell(opts.Out, m.candidates(opts.Percentile))
		endRow(opts.Out)
	}

	// (b) STRQ: random combinations of spatial and temporal windows.
	fmt.Fprintln(opts.Out, "\n(b) Spatio-temporal range query (random S x T combinations)")
	header(opts.Out, "system", "time_ms", "candidates")
	spaceSides := []float64{0.5, 1.0, 1.5, 2.5}
	timeDurs := []int64{30 * minuteMs, hourMs, 6 * hourMs, 12 * hourMs}
	for _, sys := range systems {
		sampler := workload.NewQuerySampler(lorry, opts.Seed+29)
		var m measured
		for q := 0; q < opts.Queries; q++ {
			sr := sampler.SpaceWindow(spaceSides[q%len(spaceSides)])
			tw := sampler.TimeWindow(timeDurs[q%len(timeDurs)])
			us, cand := sys.strq(sr, timeRangeQ{Start: tw.Start, End: tw.End})
			m.add(durMicros(us), cand)
		}
		cell(opts.Out, sys.name)
		cell(opts.Out, fmtDur(m.time(opts.Percentile)))
		cell(opts.Out, m.candidates(opts.Percentile))
		endRow(opts.Out)
	}
	return nil
}
