package compress

import (
	"math/rand"
	"testing"
)

func BenchmarkEncodePoints(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randomTrajectory(rng, 200)
	b.ReportAllocs()
	var total int
	for i := 0; i < b.N; i++ {
		total += len(EncodePoints(pts))
	}
	if b.N > 0 {
		b.ReportMetric(float64(total)/float64(b.N)/float64(len(pts)), "bytes/point")
	}
}

func BenchmarkDecodePoints(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	blob := EncodePoints(randomTrajectory(rng, 200))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodePoints(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimple8bEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	src := make([]uint64, 1000)
	for i := range src {
		src[i] = uint64(rng.Intn(256))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Simple8bEncode(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimple8bDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	src := make([]uint64, 1000)
	for i := range src {
		src[i] = uint64(rng.Intn(256))
	}
	words, _ := Simple8bEncode(src)
	buf := make([]uint64, 0, 1000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = Simple8bDecode(buf[:0], words)
	}
}
