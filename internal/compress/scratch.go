package compress

import (
	"sync"

	"github.com/tman-db/tman/internal/model"
)

// Pooled scratch buffers for the decode hot path. Query execution decodes
// one value per candidate row — unpacking varint words and materializing
// points that are inspected and immediately discarded — so per-row
// allocations dominate the read path without reuse. The pools hand the same
// steady-state buffers to every transient decode; callers must not retain
// pooled memory (or anything aliasing it) after Put.

var pointBufPool = sync.Pool{
	New: func() any { return new([]model.Point) },
}

// GetPointBuf returns a zero-length point buffer for AppendPoints, with
// whatever capacity earlier decodes grew.
func GetPointBuf() []model.Point {
	return (*(pointBufPool.Get().(*[]model.Point)))[:0]
}

// PutPointBuf recycles a buffer obtained from GetPointBuf (or any decode
// result the caller is done with). The points must not be referenced
// afterwards.
func PutPointBuf(buf []model.Point) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	pointBufPool.Put(&buf)
}

var u64BufPool = sync.Pool{
	New: func() any { return new([]uint64) },
}

// GetUint64Buf returns a zero-length uint64 buffer — word-unpacking scratch
// for Simple8bDecode and similar columnar decoders.
func GetUint64Buf() []uint64 {
	return (*(u64BufPool.Get().(*[]uint64)))[:0]
}

// PutUint64Buf recycles a buffer obtained from GetUint64Buf. The values
// must not be referenced afterwards.
func PutUint64Buf(buf []uint64) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:0]
	u64BufPool.Put(&buf)
}
