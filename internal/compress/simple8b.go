package compress

import (
	"errors"
	"fmt"
)

// simple8b packs runs of small unsigned integers into 64-bit words. Each
// word spends its top 4 bits on a selector that chooses one of 16 layouts:
//
//	selector  0    1    2   3   4   5   6   7   8   9  10  11  12  13  14  15
//	integers  240  120  60  30  20  15  12  10   8   7   6   5   4   3   2   1
//	bits/int  0    0    1   2   3   4   5   6   7   8  10  12  15  20  30  60
//
// Selectors 0 and 1 encode long runs of zeros with no payload bits.

var s8bCounts = [16]int{240, 120, 60, 30, 20, 15, 12, 10, 8, 7, 6, 5, 4, 3, 2, 1}
var s8bBits = [16]uint{0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 15, 20, 30, 60}

// ErrSimple8bOverflow is returned when a value exceeds the 60-bit payload
// limit of simple8b.
var ErrSimple8bOverflow = errors.New("compress: value exceeds simple8b 60-bit limit")

// Simple8bEncode packs src into 64-bit words. Values must be < 2^60.
func Simple8bEncode(src []uint64) ([]uint64, error) {
	var out []uint64
	i := 0
	for i < len(src) {
		word, consumed, err := s8bPackOne(src[i:])
		if err != nil {
			return nil, fmt.Errorf("%w (value %d at index %d)", err, src[i], i)
		}
		out = append(out, word)
		i += consumed
	}
	return out, nil
}

// s8bPackOne packs as many leading values of src as possible into one word.
func s8bPackOne(src []uint64) (word uint64, consumed int, err error) {
	// Try selectors from densest to sparsest; pick the first that fits.
	for sel := 0; sel < 16; sel++ {
		n := s8bCounts[sel]
		bits := s8bBits[sel]
		if n > len(src) {
			continue
		}
		if bits == 0 {
			// Zero-run selectors: all n values must be zero.
			ok := true
			for _, v := range src[:n] {
				if v != 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			return uint64(sel) << 60, n, nil
		}
		max := uint64(1)<<bits - 1
		ok := true
		for _, v := range src[:n] {
			if v > max {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		w := uint64(sel) << 60
		for k, v := range src[:n] {
			w |= v << (uint(k) * bits)
		}
		return w, n, nil
	}
	return 0, 0, ErrSimple8bOverflow
}

// Simple8bDecode unpacks words produced by Simple8bEncode, appending values
// to dst and returning the extended slice.
func Simple8bDecode(dst []uint64, words []uint64) []uint64 {
	for _, w := range words {
		sel := w >> 60
		n := s8bCounts[sel]
		bits := s8bBits[sel]
		if bits == 0 {
			for k := 0; k < n; k++ {
				dst = append(dst, 0)
			}
			continue
		}
		mask := uint64(1)<<bits - 1
		for k := 0; k < n; k++ {
			dst = append(dst, (w>>(uint(k)*bits))&mask)
		}
	}
	return dst
}
