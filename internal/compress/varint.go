// Package compress implements the lossless trajectory compression used by
// TMan's primary-table values (paper Section IV-B(1), "points" column).
//
// A trajectory is split into three integer streams — timestamps, X
// coordinates, Y coordinates (fixed-point) — which compress extremely well
// because consecutive points are close in both space and time:
//
//   - timestamps use delta-of-delta encoding (sampling intervals are nearly
//     constant, so second differences are tiny) followed by zigzag varints;
//   - coordinates are scaled to fixed-point integers and delta + zigzag
//     varint encoded.
//
// The package also provides a faithful simple8b implementation (Anh &
// Moffat, "Index compression using 64-bit words") as an alternative word
// packer for integer streams, mirroring the codec menu the paper cites
// (Elf, VGB, simple8b, PFOR).
package compress

import "encoding/binary"

// ZigZag maps signed integers to unsigned so that small magnitudes of either
// sign get small codes: 0→0, -1→1, 1→2, -2→3, ...
func ZigZag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// AppendUvarint appends u in LEB128 variable-length encoding.
func AppendUvarint(dst []byte, u uint64) []byte {
	return binary.AppendUvarint(dst, u)
}

// AppendVarint appends v as a zigzag varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, ZigZag(v))
}

// Uvarint reads one LEB128 value, returning it and the bytes consumed
// (<= 0 on malformed input, matching encoding/binary semantics).
func Uvarint(b []byte) (uint64, int) {
	return binary.Uvarint(b)
}

// Varint reads one zigzag varint.
func Varint(b []byte) (int64, int) {
	u, n := binary.Uvarint(b)
	return UnZigZag(u), n
}
