package compress

import (
	"errors"
	"fmt"
	"math"

	"github.com/tman-db/tman/internal/model"
)

// CoordScale is the fixed-point scale applied to coordinates before integer
// compression: 1e-7 degrees ≈ 1.1 cm at the equator, comfortably below GPS
// noise, so the codec is lossless for any realistic trajectory source.
const CoordScale = 1e7

// Codec format version written as the first byte of every compressed blob.
const trajCodecVersion = 1

// Errors returned by DecodePoints.
var (
	ErrBadBlob    = errors.New("compress: malformed trajectory blob")
	ErrBadVersion = errors.New("compress: unsupported trajectory codec version")
)

// EncodePoints compresses a point sequence losslessly (at CoordScale
// fixed-point precision). Layout:
//
//	version(1B) | count(uvarint)
//	| t0(varint) | dt0(varint) | ddt...(varints)       timestamps
//	| x0(varint) | dx...(varints)                      X coordinates
//	| y0(varint) | dy...(varints)                      Y coordinates
func EncodePoints(pts []model.Point) []byte {
	out := make([]byte, 0, 16+len(pts)*4)
	out = append(out, trajCodecVersion)
	out = AppendUvarint(out, uint64(len(pts)))
	if len(pts) == 0 {
		return out
	}

	// Timestamps: delta-of-delta.
	out = AppendVarint(out, pts[0].T)
	if len(pts) > 1 {
		prevDelta := pts[1].T - pts[0].T
		out = AppendVarint(out, prevDelta)
		for i := 2; i < len(pts); i++ {
			delta := pts[i].T - pts[i-1].T
			out = AppendVarint(out, delta-prevDelta)
			prevDelta = delta
		}
	}

	// Coordinates: fixed-point deltas.
	prevX := quantize(pts[0].X)
	out = AppendVarint(out, prevX)
	for i := 1; i < len(pts); i++ {
		x := quantize(pts[i].X)
		out = AppendVarint(out, x-prevX)
		prevX = x
	}
	prevY := quantize(pts[0].Y)
	out = AppendVarint(out, prevY)
	for i := 1; i < len(pts); i++ {
		y := quantize(pts[i].Y)
		out = AppendVarint(out, y-prevY)
		prevY = y
	}
	return out
}

// DecodePoints decompresses a blob produced by EncodePoints.
func DecodePoints(blob []byte) ([]model.Point, error) {
	pts, err := AppendPoints(nil, blob)
	if err != nil {
		return nil, err
	}
	return pts, nil
}

// AppendPoints decompresses a blob produced by EncodePoints, appending the
// decoded points to dst and returning the extended slice. Reusing a buffer
// with spare capacity (a pooled one from GetPointBuf, or a prior result
// resliced to [:0]) makes repeated decodes allocation-free: the push-down
// filter hot path decodes one trajectory per candidate row and discards it
// immediately, so the buffer reaches steady state after the largest
// trajectory in the workload. On error dst is returned unchanged.
func AppendPoints(dst []model.Point, blob []byte) ([]model.Point, error) {
	if len(blob) == 0 {
		return dst, ErrBadBlob
	}
	if blob[0] != trajCodecVersion {
		return dst, fmt.Errorf("%w: %d", ErrBadVersion, blob[0])
	}
	b := blob[1:]
	count, n := Uvarint(b)
	if n <= 0 {
		return dst, ErrBadBlob
	}
	b = b[n:]
	if count == 0 {
		return dst, nil
	}
	if count > uint64(len(blob))*10 {
		// A varint stream encodes at least one value per ~0.1 byte is
		// impossible; reject absurd counts before allocating.
		return dst, fmt.Errorf("%w: implausible point count %d", ErrBadBlob, count)
	}
	base := len(dst)
	need := base + int(count)
	if cap(dst) < need {
		grown := make([]model.Point, need)
		copy(grown, dst)
		dst = grown
	} else {
		dst = dst[:need]
	}
	// Every field of every point below is assigned, so stale values in a
	// recycled buffer never leak through.
	pts := dst[base:]

	// Timestamps.
	t0, n := Varint(b)
	if n <= 0 {
		return dst[:base], ErrBadBlob
	}
	b = b[n:]
	pts[0].T = t0
	if count > 1 {
		delta, n := Varint(b)
		if n <= 0 {
			return dst[:base], ErrBadBlob
		}
		b = b[n:]
		pts[1].T = t0 + delta
		prev := pts[1].T
		prevDelta := delta
		for i := uint64(2); i < count; i++ {
			dd, n := Varint(b)
			if n <= 0 {
				return dst[:base], ErrBadBlob
			}
			b = b[n:]
			prevDelta += dd
			prev += prevDelta
			pts[i].T = prev
		}
	}

	// X coordinates.
	x, n := Varint(b)
	if n <= 0 {
		return dst[:base], ErrBadBlob
	}
	b = b[n:]
	pts[0].X = dequantize(x)
	acc := x
	for i := uint64(1); i < count; i++ {
		d, n := Varint(b)
		if n <= 0 {
			return dst[:base], ErrBadBlob
		}
		b = b[n:]
		acc += d
		pts[i].X = dequantize(acc)
	}

	// Y coordinates.
	y, n := Varint(b)
	if n <= 0 {
		return dst[:base], ErrBadBlob
	}
	b = b[n:]
	pts[0].Y = dequantize(y)
	acc = y
	for i := uint64(1); i < count; i++ {
		d, n := Varint(b)
		if n <= 0 {
			return dst[:base], ErrBadBlob
		}
		b = b[n:]
		acc += d
		pts[i].Y = dequantize(acc)
	}
	return dst, nil
}

func quantize(v float64) int64 {
	return int64(math.Round(v * CoordScale))
}

func dequantize(q int64) float64 {
	return float64(q) / CoordScale
}
