package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/tman-db/tman/internal/model"
)

func TestZigZagRoundTrip(t *testing.T) {
	f := func(v int64) bool { return UnZigZag(ZigZag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Small magnitudes get small codes.
	cases := map[int64]uint64{0: 0, -1: 1, 1: 2, -2: 3, 2: 4}
	for v, want := range cases {
		if got := ZigZag(v); got != want {
			t.Errorf("ZigZag(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		var b []byte
		for _, v := range vals {
			b = AppendVarint(b, v)
		}
		for _, want := range vals {
			got, n := Varint(b)
			if n <= 0 || got != want {
				return false
			}
			b = b[n:]
		}
		return len(b) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimple8bRoundTrip(t *testing.T) {
	cases := [][]uint64{
		{},
		{0},
		{1},
		{1 << 59},
		make([]uint64, 500), // long zero run
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		{0, 0, 0, 7, 0, 0, 1 << 40, 3},
	}
	for i, src := range cases {
		words, err := Simple8bEncode(src)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		got := Simple8bDecode(nil, words)
		if len(got) != len(src) {
			t.Fatalf("case %d: len %d != %d", i, len(got), len(src))
		}
		for j := range src {
			if got[j] != src[j] {
				t.Fatalf("case %d: value %d: %d != %d", i, j, got[j], src[j])
			}
		}
	}
}

func TestSimple8bRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 100; iter++ {
		n := rng.Intn(1000)
		src := make([]uint64, n)
		for i := range src {
			// Mix of magnitudes, biased small like real delta streams.
			shift := uint(rng.Intn(60))
			src[i] = rng.Uint64() % (1 << shift)
		}
		words, err := Simple8bEncode(src)
		if err != nil {
			t.Fatal(err)
		}
		got := Simple8bDecode(nil, words)
		if len(got) != len(src) {
			t.Fatalf("iter %d: len %d != %d", iter, len(got), len(src))
		}
		for j := range src {
			if got[j] != src[j] {
				t.Fatalf("iter %d: value %d mismatch", iter, j)
			}
		}
	}
}

func TestSimple8bOverflow(t *testing.T) {
	if _, err := Simple8bEncode([]uint64{1 << 60}); err == nil {
		t.Error("values >= 2^60 must be rejected")
	}
}

func TestSimple8bCompressionRatio(t *testing.T) {
	// Small deltas should pack many values per word.
	src := make([]uint64, 1000)
	for i := range src {
		src[i] = uint64(i % 16)
	}
	words, err := Simple8bEncode(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) > 100 {
		t.Errorf("1000 4-bit values should use ~67 words, got %d", len(words))
	}
}

func randomTrajectory(rng *rand.Rand, n int) []model.Point {
	pts := make([]model.Point, n)
	x := 116.0 + rng.Float64()
	y := 39.0 + rng.Float64()
	ts := int64(1_396_000_000_000) + rng.Int63n(1e9)
	for i := range pts {
		x += (rng.Float64() - 0.5) * 0.001
		y += (rng.Float64() - 0.5) * 0.001
		ts += 10_000 + rng.Int63n(5_000)
		pts[i] = model.Point{X: x, Y: y, T: ts}
	}
	return pts
}

func TestEncodeDecodePointsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 50; iter++ {
		src := randomTrajectory(rng, rng.Intn(500))
		blob := EncodePoints(src)
		got, err := DecodePoints(blob)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if len(got) != len(src) {
			t.Fatalf("iter %d: len %d != %d", iter, len(got), len(src))
		}
		for i := range src {
			if got[i].T != src[i].T {
				t.Fatalf("iter %d pt %d: T %d != %d", iter, i, got[i].T, src[i].T)
			}
			if math.Abs(got[i].X-src[i].X) > 1/CoordScale {
				t.Fatalf("iter %d pt %d: X error %g", iter, i, got[i].X-src[i].X)
			}
			if math.Abs(got[i].Y-src[i].Y) > 1/CoordScale {
				t.Fatalf("iter %d pt %d: Y error %g", iter, i, got[i].Y-src[i].Y)
			}
		}
	}
}

func TestEncodePointsIdempotentAtFixedPoint(t *testing.T) {
	// Once coordinates are on the fixed-point lattice, a decode/encode cycle
	// is exactly stable (true losslessness for quantized data).
	rng := rand.New(rand.NewSource(6))
	src := randomTrajectory(rng, 200)
	once, err := DecodePoints(EncodePoints(src))
	if err != nil {
		t.Fatal(err)
	}
	twice, err := DecodePoints(EncodePoints(once))
	if err != nil {
		t.Fatal(err)
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Fatalf("pt %d not stable: %+v vs %+v", i, once[i], twice[i])
		}
	}
}

func TestDecodePointsRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99},            // bad version
		{1},             // missing count
		{1, 5},          // count 5 but no data
		{1, 2, 0x80},    // truncated varint
		{1, 0xFF, 0xFF}, // huge count, no data
	}
	for i, blob := range cases {
		if _, err := DecodePoints(blob); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestEncodePointsEmpty(t *testing.T) {
	blob := EncodePoints(nil)
	pts, err := DecodePoints(blob)
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty round trip: pts=%v err=%v", pts, err)
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := randomTrajectory(rng, 1000)
	blob := EncodePoints(src)
	raw := len(src) * 24 // 3 × 8 bytes
	if len(blob) >= raw/2 {
		t.Errorf("compressed %d bytes vs raw %d; expected > 2x compression on smooth data", len(blob), raw)
	}
}
