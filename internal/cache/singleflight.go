package cache

import "sync"

// inflightLoad is one directory load in progress. Followers wait on wg and
// read shapes/err afterwards; both are written exactly once, before Done.
type inflightLoad struct {
	wg     sync.WaitGroup
	shapes []Shape
	err    error
}

// flightGroup deduplicates concurrent directory loads per element code: the
// first caller (the leader) runs the load, everyone arriving while it is in
// flight waits for the leader's result instead of issuing another load —
// N concurrent cold misses cost one Directory.Load, not N.
type flightGroup struct {
	mu sync.Mutex
	m  map[uint64]*inflightLoad
}

// do runs fn for key unless a flight is already underway, in which case it
// waits and returns the shared result. leader reports whether this caller
// ran fn; install reports whether the leader's result is still current (a
// Forget during the flight — a writer replacing the directory — vetoes
// installing the possibly stale result into the cache).
func (g *flightGroup) do(key uint64, fn func() ([]Shape, error)) (shapes []Shape, leader, install bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[uint64]*inflightLoad)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.shapes, false, false, f.err
	}
	f := &inflightLoad{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.shapes, f.err = fn()

	g.mu.Lock()
	install = g.m[key] == f
	if install {
		delete(g.m, key)
	}
	g.mu.Unlock()
	f.wg.Done()
	return f.shapes, true, install, f.err
}

// forget detaches any in-flight load for key: waiters still receive the
// old result, but the leader will not install it, and the next caller
// starts a fresh load. Writers call this after replacing an element's
// directory so a racing load cannot resurrect the pre-write tuples.
func (g *flightGroup) forget(key uint64) {
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
}
