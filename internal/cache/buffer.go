package cache

import "sync"

// BufferShapeCache accumulates shape bitmaps that have not yet been
// assigned optimized final codes (paper Section IV-C). New trajectories
// whose shapes are unknown are stored under their raw codes; once an
// element's buffered shape count crosses the threshold, the engine triggers
// a re-encode of that element: all known shapes (directory + buffer) are
// reordered, affected rows are rewritten, and the buffer is cleared.
type BufferShapeCache struct {
	mu        sync.Mutex
	threshold int
	pending   map[uint64]map[uint64]struct{} // element -> set of raw shape bits
}

// NewBufferShapeCache creates a buffer that flags an element for re-encode
// once it holds more than threshold unoptimized shapes.
func NewBufferShapeCache(threshold int) *BufferShapeCache {
	if threshold < 1 {
		threshold = 1
	}
	return &BufferShapeCache{
		threshold: threshold,
		pending:   make(map[uint64]map[uint64]struct{}),
	}
}

// Add records an unoptimized shape for an element and reports whether the
// element's buffer has now crossed the re-encode threshold.
func (b *BufferShapeCache) Add(elemCode, shapeBits uint64) (needsReencode bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	set, ok := b.pending[elemCode]
	if !ok {
		set = make(map[uint64]struct{})
		b.pending[elemCode] = set
	}
	set[shapeBits] = struct{}{}
	return len(set) >= b.threshold
}

// Contains reports whether the shape is already buffered for the element.
func (b *BufferShapeCache) Contains(elemCode, shapeBits uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.pending[elemCode][shapeBits]
	return ok
}

// Take removes and returns the buffered shapes of an element (in insertion-
// independent, deterministic ascending order).
func (b *BufferShapeCache) Take(elemCode uint64) []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := b.pending[elemCode]
	if len(set) == 0 {
		delete(b.pending, elemCode)
		return nil
	}
	out := make([]uint64, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	delete(b.pending, elemCode)
	sortUint64s(out)
	return out
}

// Shapes returns the buffered shapes of an element without removing them
// (ascending order). Queries consult this so trajectories stored under raw
// codes remain reachable before their element is re-encoded.
func (b *BufferShapeCache) Shapes(elemCode uint64) []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	set := b.pending[elemCode]
	if len(set) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sortUint64s(out)
	return out
}

// PendingElements returns element codes that currently have buffered
// shapes.
func (b *BufferShapeCache) PendingElements() []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]uint64, 0, len(b.pending))
	for e := range b.pending {
		out = append(out, e)
	}
	sortUint64s(out)
	return out
}

func sortUint64s(s []uint64) {
	// Tiny insertion sort; buffers are small by construction.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
