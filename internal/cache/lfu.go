// Package cache implements TMan's index cache (paper Section IV-B(3)): the
// in-memory LFU cache of per-element shape directories, backed by a
// persistent directory (Redis in the paper; a KV-store table here), plus
// the buffer shape cache used by the update path (Section IV-C).
package cache

import "sync"

// lfuEntry is one cached element directory with its access frequency.
type lfuEntry struct {
	key   uint64
	value []Shape
	freq  int
	// Intrusive position inside its frequency bucket.
	prev, next *lfuEntry
	bucketOf   *freqBucket
}

// Shape mirrors tshape.Shape without importing it (the cache is agnostic to
// index internals): a raw cell bitmap and its optimized final code.
type Shape struct {
	Bits uint64
	Code uint64
}

// freqBucket is a doubly-linked list of entries sharing a frequency.
type freqBucket struct {
	freq       int
	head, tail *lfuEntry
	prev, next *freqBucket
}

// LFU is a constant-time least-frequently-used cache from element code to
// shape directory, using the classic O(1) bucket-list algorithm. The zero
// value is not usable; use NewLFU. Safe for concurrent use, but a single
// mutex guards every operation — concurrent query serving should wrap
// shards of these in a ShardedLFU.
//
// Ownership contract: Put copies the inserted slice, so the cache never
// aliases caller memory; Get returns the cache's internal slice, which
// callers must treat as read-only (the engine only iterates directories,
// and copying on every hit would put an allocation on the hottest read
// path).
type LFU struct {
	mu       sync.Mutex
	capacity int
	entries  map[uint64]*lfuEntry
	buckets  *freqBucket // sentinel-free ascending list; nil when empty
	hits     int64
	misses   int64
	evicts   int64
}

// NewLFU creates an LFU cache holding at most capacity element directories.
func NewLFU(capacity int) *LFU {
	if capacity < 1 {
		capacity = 1
	}
	return &LFU{capacity: capacity, entries: make(map[uint64]*lfuEntry, capacity)}
}

// Get returns the cached directory for an element and whether it was
// present, bumping the element's frequency. The returned slice is the
// cache's internal copy: callers must not mutate it.
func (c *LFU) Get(key uint64) ([]Shape, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.bump(e)
	return e.value, true
}

// Put inserts or replaces an element directory, evicting the least
// frequently used entry when full. The value is copied defensively, so the
// caller may keep mutating its slice after Put returns.
func (c *LFU) Put(key uint64, value []Shape) {
	var cp []Shape
	if value != nil {
		cp = make([]Shape, len(value))
		copy(cp, value)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.value = cp
		c.bump(e)
		return
	}
	if len(c.entries) >= c.capacity {
		c.evictLocked()
	}
	e := &lfuEntry{key: key, value: cp, freq: 1}
	c.entries[key] = e
	c.attach(e)
}

// Invalidate removes an element directory (used when re-encoding rewrites
// final codes).
func (c *LFU) Invalidate(key uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.detach(e)
		delete(c.entries, key)
	}
}

// Clear drops everything, including the hit/miss/eviction counters, so
// back-to-back benchmark phases read clean stats.
func (c *LFU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[uint64]*lfuEntry, c.capacity)
	c.buckets = nil
	c.hits, c.misses, c.evicts = 0, 0, 0
}

// Len returns the number of cached elements.
func (c *LFU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CacheStats reports hit/miss/eviction counters. DirLoads and SharedLoads
// describe the miss path of an IndexCache: directory loads actually issued
// versus misses that piggy-backed on another caller's in-flight load
// (singleflight dedup). A plain LFU/ShardedLFU leaves them zero.
type CacheStats struct {
	Hits, Misses, Evictions int64
	DirLoads, SharedLoads   int64
}

// Stats returns a snapshot of the counters.
func (c *LFU) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evicts}
}

// --- O(1) LFU plumbing -------------------------------------------------

// attach inserts e (freq already set) into its bucket, creating it if
// needed. e must not currently be linked.
func (c *LFU) attach(e *lfuEntry) {
	b := c.findOrInsertBucket(e.freq)
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
	e.bucketOf = b
}

// detach unlinks e from its bucket, removing the bucket if emptied.
func (c *LFU) detach(e *lfuEntry) {
	b := e.bucketOf
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
	if b.head == nil {
		c.removeBucket(b)
	}
	e.bucketOf = nil
}

// bump moves e to the next frequency.
func (c *LFU) bump(e *lfuEntry) {
	c.detach(e)
	e.freq++
	c.attach(e)
}

// evictLocked removes one entry from the lowest-frequency bucket (the tail
// = least recently added among ties).
func (c *LFU) evictLocked() {
	if c.buckets == nil {
		return
	}
	victim := c.buckets.tail
	c.detach(victim)
	delete(c.entries, victim.key)
	c.evicts++
}

func (c *LFU) findOrInsertBucket(freq int) *freqBucket {
	if c.buckets == nil || c.buckets.freq > freq {
		b := &freqBucket{freq: freq, next: c.buckets}
		if c.buckets != nil {
			c.buckets.prev = b
		}
		c.buckets = b
		return b
	}
	cur := c.buckets
	for cur.next != nil && cur.next.freq <= freq {
		cur = cur.next
	}
	if cur.freq == freq {
		return cur
	}
	b := &freqBucket{freq: freq, prev: cur, next: cur.next}
	if cur.next != nil {
		cur.next.prev = b
	}
	cur.next = b
	return b
}

func (c *LFU) removeBucket(b *freqBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		c.buckets = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}
