package cache

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedLFUBasic(t *testing.T) {
	s := NewShardedLFU(64, 16)
	if s.Shards() != 16 {
		t.Fatalf("Shards = %d", s.Shards())
	}
	for k := uint64(0); k < 32; k++ {
		s.Put(k, []Shape{{Bits: k, Code: k}})
	}
	for k := uint64(0); k < 32; k++ {
		got, ok := s.Get(k)
		if !ok || len(got) != 1 || got[0].Bits != k {
			t.Fatalf("Get(%d) = %+v, %v", k, got, ok)
		}
	}
	st := s.Stats()
	if st.Hits != 32 || st.Misses != 0 {
		t.Errorf("stats = %+v", st)
	}
	s.Invalidate(7)
	if _, ok := s.Get(7); ok {
		t.Error("invalidated key still present")
	}
	if s.Len() != 31 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Clear()
	if s.Len() != 0 {
		t.Error("Clear left entries")
	}
	if st := s.Stats(); st != (CacheStats{}) {
		t.Errorf("Clear left counters: %+v", st)
	}
}

func TestShardedLFUShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultCacheShards}, {1, 1}, {3, 4}, {16, 16}, {17, 32},
	} {
		if got := NewShardedLFU(128, tc.in).Shards(); got != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestLFUClearResetsCounters(t *testing.T) {
	c := NewLFU(4)
	c.Put(1, nil)
	c.Get(1)
	c.Get(2)
	if st := c.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("pre-clear stats = %+v", st)
	}
	c.Clear()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("Clear left counters: %+v", st)
	}
}

func TestLFUPutCopiesValue(t *testing.T) {
	c := NewLFU(4)
	in := []Shape{{Bits: 1, Code: 2}}
	c.Put(9, in)
	in[0].Bits = 99 // caller keeps mutating its slice
	got, _ := c.Get(9)
	if got[0].Bits != 1 {
		t.Error("Put did not copy the inserted slice")
	}
}

// TestIndexCacheShapesAliasing pins the aliasing fix: a caller mutating the
// slice it handed to Update must not corrupt what later readers observe.
func TestIndexCacheShapesAliasing(t *testing.T) {
	ic := NewIndexCache(8, NewMemoryDirectory())
	in := []Shape{{Bits: 0b11, Code: 0}}
	if err := ic.Update(5, in); err != nil {
		t.Fatal(err)
	}
	in[0].Code = 77
	if got := ic.Shapes(5); got[0].Code != 0 {
		t.Errorf("Update aliased caller memory: %+v", got)
	}
}

// countingDirectory counts Load calls and can block them on a gate, to make
// concurrent cold misses observable.
type countingDirectory struct {
	inner   Directory
	loads   atomic.Int64
	started chan struct{} // closed once the first Load begins
	gate    chan struct{} // Loads block until closed (nil = no blocking)
	once    sync.Once
}

func (d *countingDirectory) Load(elem uint64) ([]Shape, error) {
	d.loads.Add(1)
	d.once.Do(func() { close(d.started) })
	if d.gate != nil {
		<-d.gate
	}
	return d.inner.Load(elem)
}

func (d *countingDirectory) Store(elem uint64, shapes []Shape) error {
	return d.inner.Store(elem, shapes)
}

// TestSingleflightDedupesColdMisses asserts the acceptance criterion
// directly: N concurrent queries for one cold element issue exactly one
// Directory.Load.
func TestSingleflightDedupesColdMisses(t *testing.T) {
	mem := NewMemoryDirectory()
	mem.Store(42, []Shape{{Bits: 0b101, Code: 0}})
	dir := &countingDirectory{inner: mem, started: make(chan struct{}), gate: make(chan struct{})}
	ic := NewIndexCache(8, dir)

	const clients = 16
	var entered atomic.Int64
	var wg sync.WaitGroup
	results := make([][]Shape, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Add(1)
			results[i] = ic.Shapes(42)
		}(i)
	}
	// Release the (single) leader's load only after every client has called
	// Shapes, so all of them observe the element as cold.
	<-dir.started
	for entered.Load() < clients {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(dir.gate)
	wg.Wait()

	if got := dir.loads.Load(); got != 1 {
		t.Fatalf("concurrent cold misses issued %d directory loads, want 1", got)
	}
	for i, r := range results {
		if len(r) != 1 || r[0].Bits != 0b101 {
			t.Fatalf("client %d got %+v", i, r)
		}
	}
	st := ic.Stats()
	if st.DirLoads != 1 || st.SharedLoads != clients-1 {
		t.Errorf("stats = %+v (want 1 load, %d shared)", st, clients-1)
	}
	// The element is now cached: one more access is a pure hit.
	ic.Shapes(42)
	if got := dir.loads.Load(); got != 1 {
		t.Errorf("cached element reloaded: %d loads", got)
	}
}

// TestSingleflightUpdateDuringLoad checks the staleness guard: an Update
// racing an in-flight load must win — the cache may not end up holding the
// pre-update directory.
func TestSingleflightUpdateDuringLoad(t *testing.T) {
	mem := NewMemoryDirectory()
	mem.Store(7, []Shape{{Bits: 1, Code: 0}})
	dir := &countingDirectory{inner: mem, started: make(chan struct{}), gate: make(chan struct{})}
	ic := NewIndexCache(8, dir)

	done := make(chan []Shape)
	go func() {
		done <- ic.Shapes(7) // leader; blocks inside Load on the gate
	}()
	<-dir.started
	// Writer replaces the directory while the load is in flight.
	if err := ic.Update(7, []Shape{{Bits: 1, Code: 0}, {Bits: 3, Code: 1}}); err != nil {
		t.Fatal(err)
	}
	close(dir.gate)
	<-done

	if got := ic.Shapes(7); len(got) != 2 {
		t.Fatalf("stale in-flight load overwrote Update: %+v", got)
	}
}

// TestShardedLFUConcurrentStress is the -race stress test of the sharded
// read path: concurrent Shapes/Update/Invalidate over a shared IndexCache.
func TestShardedLFUConcurrentStress(t *testing.T) {
	dir := NewMemoryDirectory()
	for e := uint64(0); e < 64; e++ {
		dir.Store(e, []Shape{{Bits: e, Code: 0}})
	}
	ic := NewIndexCacheSharded(32, 16, dir)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 4000; i++ {
				e := uint64(rng.Intn(64))
				switch rng.Intn(10) {
				case 0:
					ic.Update(e, []Shape{{Bits: e, Code: uint64(i)}})
				case 1:
					ic.Invalidate(e)
				default:
					for _, s := range ic.Shapes(e) {
						if s.Bits != e {
							t.Errorf("element %d returned foreign shape %+v", e, s)
							return
						}
					}
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	st := ic.Stats()
	if st.Hits == 0 || st.DirLoads == 0 {
		t.Errorf("stress produced no cache traffic: %+v", st)
	}
}
