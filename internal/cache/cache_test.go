package cache

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestLFUBasicPutGet(t *testing.T) {
	c := NewLFU(4)
	c.Put(1, []Shape{{Bits: 0b11, Code: 0}})
	got, ok := c.Get(1)
	if !ok || len(got) != 1 || got[0].Bits != 0b11 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get(2); ok {
		t.Error("missing key reported present")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(2)
	c.Put(1, nil)
	c.Put(2, nil)
	// Touch 1 several times; 2 stays at freq 1.
	c.Get(1)
	c.Get(1)
	c.Put(3, nil) // must evict 2
	if _, ok := c.Get(2); ok {
		t.Error("least frequently used entry (2) should have been evicted")
	}
	if _, ok := c.Get(1); !ok {
		t.Error("frequently used entry (1) should survive")
	}
	if _, ok := c.Get(3); !ok {
		t.Error("new entry (3) should be present")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestLFUReplaceBumpsFrequency(t *testing.T) {
	c := NewLFU(2)
	c.Put(1, nil)
	c.Put(1, []Shape{{Bits: 5}}) // replace, freq 2
	c.Put(2, nil)
	c.Put(3, nil) // evicts 2 (freq 1), not 1 (freq 2)
	if _, ok := c.Get(1); !ok {
		t.Error("replaced entry should keep its bumped frequency")
	}
	got, _ := c.Get(1)
	if len(got) != 1 || got[0].Bits != 5 {
		t.Error("replace did not update value")
	}
}

func TestLFUInvalidateAndClear(t *testing.T) {
	c := NewLFU(4)
	c.Put(1, nil)
	c.Put(2, nil)
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Error("invalidated entry still present")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	c.Clear()
	if c.Len() != 0 {
		t.Error("Clear left entries")
	}
	// Invalidate of a missing key is a no-op.
	c.Invalidate(99)
}

func TestLFUStress(t *testing.T) {
	c := NewLFU(64)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		k := uint64(rng.Intn(512))
		switch rng.Intn(3) {
		case 0:
			c.Put(k, nil)
		case 1:
			c.Get(k)
		case 2:
			if rng.Intn(10) == 0 {
				c.Invalidate(k)
			}
		}
		if c.Len() > 64 {
			t.Fatalf("capacity exceeded: %d", c.Len())
		}
	}
}

func TestLFUConcurrent(t *testing.T) {
	c := NewLFU(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 5000; i++ {
				k := uint64(rng.Intn(100))
				if rng.Intn(2) == 0 {
					c.Put(k, []Shape{{Bits: k}})
				} else {
					c.Get(k)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("capacity exceeded after concurrent use: %d", c.Len())
	}
}

type failingDirectory struct{}

func (failingDirectory) Load(uint64) ([]Shape, error) { return nil, errors.New("boom") }
func (failingDirectory) Store(uint64, []Shape) error  { return errors.New("boom") }

func TestIndexCacheLoadsFromDirectory(t *testing.T) {
	dir := NewMemoryDirectory()
	if err := dir.Store(7, []Shape{{Bits: 0b101, Code: 0}}); err != nil {
		t.Fatal(err)
	}
	ic := NewIndexCache(8, dir)
	got := ic.Shapes(7)
	if len(got) != 1 || got[0].Bits != 0b101 {
		t.Fatalf("Shapes = %+v", got)
	}
	// Second access hits the cache.
	ic.Shapes(7)
	st := ic.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v (want one miss then one hit)", st)
	}
	// Unknown element: empty, not cached.
	if got := ic.Shapes(99); got != nil {
		t.Errorf("unknown element = %+v", got)
	}
}

func TestIndexCacheUpdateWritesThrough(t *testing.T) {
	dir := NewMemoryDirectory()
	ic := NewIndexCache(8, dir)
	if err := ic.Update(3, []Shape{{Bits: 1, Code: 0}, {Bits: 3, Code: 1}}); err != nil {
		t.Fatal(err)
	}
	// Visible via a fresh cache (persisted).
	ic2 := NewIndexCache(8, dir)
	if got := ic2.Shapes(3); len(got) != 2 {
		t.Fatalf("persisted shapes = %+v", got)
	}
	// Update failure propagates.
	bad := NewIndexCache(8, failingDirectory{})
	if err := bad.Update(1, nil); err == nil {
		t.Error("directory failure should surface")
	}
	if got := bad.Shapes(1); got != nil {
		t.Error("failed load should return nil")
	}
}

func TestBufferShapeCacheThreshold(t *testing.T) {
	b := NewBufferShapeCache(3)
	if b.Add(1, 0b001) {
		t.Error("first shape should not trigger re-encode")
	}
	if b.Add(1, 0b010) {
		t.Error("second shape should not trigger re-encode")
	}
	// Duplicate does not advance the count.
	if b.Add(1, 0b010) {
		t.Error("duplicate shape should not trigger re-encode")
	}
	if !b.Add(1, 0b100) {
		t.Error("third distinct shape should trigger re-encode")
	}
	if !b.Contains(1, 0b001) || b.Contains(1, 0b111) {
		t.Error("Contains wrong")
	}
	shapes := b.Take(1)
	if len(shapes) != 3 || shapes[0] != 0b001 || shapes[2] != 0b100 {
		t.Fatalf("Take = %v", shapes)
	}
	if got := b.Take(1); got != nil {
		t.Error("second Take should be empty")
	}
}

func TestBufferShapeCachePendingElements(t *testing.T) {
	b := NewBufferShapeCache(10)
	b.Add(5, 1)
	b.Add(2, 1)
	b.Add(5, 2)
	got := b.PendingElements()
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("PendingElements = %v", got)
	}
}

func TestMemoryDirectoryIsolation(t *testing.T) {
	dir := NewMemoryDirectory()
	in := []Shape{{Bits: 1}}
	dir.Store(1, in)
	in[0].Bits = 99 // mutation after store must not affect directory
	got, _ := dir.Load(1)
	if got[0].Bits != 1 {
		t.Error("Store did not copy input")
	}
	got[0].Bits = 77 // mutation of loaded slice must not affect directory
	got2, _ := dir.Load(1)
	if got2[0].Bits != 1 {
		t.Error("Load did not copy output")
	}
	if dir.Elements() != 1 {
		t.Errorf("Elements = %d", dir.Elements())
	}
}

func ExampleLFU() {
	c := NewLFU(2)
	c.Put(1, []Shape{{Bits: 0b11, Code: 0}})
	c.Put(2, []Shape{{Bits: 0b01, Code: 1}})
	c.Get(1) // bump 1
	c.Put(3, nil)
	_, ok := c.Get(2)
	fmt.Println("entry 2 survived:", ok)
	// Output: entry 2 survived: false
}
