package cache

// ShardedLFU spreads an LFU cache over independently locked shards so
// concurrent queries do not serialize on one global mutex. Element codes are
// mixed with a 64-bit finalizer before sharding, because quadrant DFS codes
// cluster in their low bits and would otherwise hot-spot a few shards.
//
// Eviction is per shard: each shard runs the O(1) LFU algorithm over its
// own slice of the capacity. Aggregate occupancy can therefore diverge from
// a single global LFU under skew, which is the standard trade for lock-free
// cross-shard reads (the same partitioning HBase's LruBlockCache and
// ristretto apply).
type ShardedLFU struct {
	shards []*LFU
	mask   uint64
}

// DefaultCacheShards is the shard count used when callers pass 0.
const DefaultCacheShards = 16

// NewShardedLFU builds a cache of the given total capacity split over
// shards (rounded up to a power of two; 0 means DefaultCacheShards, 1 keeps
// the single-mutex layout). Per-shard capacity is at least one entry.
func NewShardedLFU(capacity, shards int) *ShardedLFU {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacity < 1 {
		capacity = 1
	}
	perShard := (capacity + n - 1) / n
	s := &ShardedLFU{shards: make([]*LFU, n), mask: uint64(n - 1)}
	for i := range s.shards {
		s.shards[i] = NewLFU(perShard)
	}
	return s
}

// shard routes a key to its shard via a splitmix64 finalizer.
func (s *ShardedLFU) shard(key uint64) *LFU {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return s.shards[h&s.mask]
}

// Get returns the cached directory for an element, bumping its frequency.
// The returned slice is cache-internal and must be treated as read-only.
func (s *ShardedLFU) Get(key uint64) ([]Shape, bool) { return s.shard(key).Get(key) }

// Put inserts or replaces an element directory (value copied defensively).
func (s *ShardedLFU) Put(key uint64, value []Shape) { s.shard(key).Put(key, value) }

// Invalidate removes an element directory.
func (s *ShardedLFU) Invalidate(key uint64) { s.shard(key).Invalidate(key) }

// Clear drops every shard's entries and counters.
func (s *ShardedLFU) Clear() {
	for _, sh := range s.shards {
		sh.Clear()
	}
}

// Len returns the total number of cached elements.
func (s *ShardedLFU) Len() int {
	var n int
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Shards returns the shard count.
func (s *ShardedLFU) Shards() int { return len(s.shards) }

// Stats aggregates the per-shard counters into one snapshot.
func (s *ShardedLFU) Stats() CacheStats {
	var out CacheStats
	for _, sh := range s.shards {
		st := sh.Stats()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
	}
	return out
}
