package cache

import "sync"

// Directory is the persistent store of ⟨element, shape, final code⟩ tuples
// — the role Redis plays in the paper. The engine implements it on a
// KV-store table so the whole system stays embedded.
type Directory interface {
	// Load returns all shape tuples of an element ((nil, nil) when the
	// element has no recorded shapes).
	Load(elemCode uint64) ([]Shape, error)
	// Store persists the full directory of an element, replacing any
	// previous tuples.
	Store(elemCode uint64, shapes []Shape) error
}

// IndexCache is the read path of TMan's index cache: an LFU front over the
// persistent directory. On a miss the element's tuples are loaded from the
// directory and installed in the cache.
type IndexCache struct {
	lfu *LFU
	dir Directory
}

// NewIndexCache builds an index cache with the given LFU capacity (number
// of element directories held in memory).
func NewIndexCache(capacity int, dir Directory) *IndexCache {
	return &IndexCache{lfu: NewLFU(capacity), dir: dir}
}

// Shapes returns the used shapes of an element, loading from the directory
// on a cache miss. It satisfies tshape.ShapeProvider (errors surface as an
// empty directory, which is sound for queries over elements that have never
// stored a shape).
func (ic *IndexCache) Shapes(elemCode uint64) []Shape {
	if shapes, ok := ic.lfu.Get(elemCode); ok {
		return shapes
	}
	shapes, err := ic.dir.Load(elemCode)
	if err != nil || shapes == nil {
		return nil
	}
	ic.lfu.Put(elemCode, shapes)
	return shapes
}

// Update persists a new directory for an element and refreshes the cache.
func (ic *IndexCache) Update(elemCode uint64, shapes []Shape) error {
	if err := ic.dir.Store(elemCode, shapes); err != nil {
		return err
	}
	ic.lfu.Put(elemCode, shapes)
	return nil
}

// Invalidate drops an element from the in-memory layer only.
func (ic *IndexCache) Invalidate(elemCode uint64) { ic.lfu.Invalidate(elemCode) }

// Stats exposes the LFU counters.
func (ic *IndexCache) Stats() CacheStats { return ic.lfu.Stats() }

// MemoryDirectory is a Directory held in process memory, for tests and for
// engines configured without persistence.
type MemoryDirectory struct {
	mu sync.RWMutex
	m  map[uint64][]Shape
}

// NewMemoryDirectory creates an empty in-memory directory.
func NewMemoryDirectory() *MemoryDirectory {
	return &MemoryDirectory{m: make(map[uint64][]Shape)}
}

// Load implements Directory.
func (d *MemoryDirectory) Load(elemCode uint64) ([]Shape, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	shapes, ok := d.m[elemCode]
	if !ok {
		return nil, nil
	}
	out := make([]Shape, len(shapes))
	copy(out, shapes)
	return out, nil
}

// Store implements Directory.
func (d *MemoryDirectory) Store(elemCode uint64, shapes []Shape) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := make([]Shape, len(shapes))
	copy(cp, shapes)
	d.m[elemCode] = cp
	return nil
}

// Elements returns the number of elements with stored directories.
func (d *MemoryDirectory) Elements() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.m)
}
