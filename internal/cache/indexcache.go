package cache

import (
	"sync"
	"sync/atomic"
)

// Directory is the persistent store of ⟨element, shape, final code⟩ tuples
// — the role Redis plays in the paper. The engine implements it on a
// KV-store table so the whole system stays embedded.
type Directory interface {
	// Load returns all shape tuples of an element ((nil, nil) when the
	// element has no recorded shapes).
	Load(elemCode uint64) ([]Shape, error)
	// Store persists the full directory of an element, replacing any
	// previous tuples.
	Store(elemCode uint64, shapes []Shape) error
}

// IndexCache is the read path of TMan's index cache: a sharded LFU front
// over the persistent directory. On a miss the element's tuples are loaded
// from the directory and installed in the cache; concurrent misses for the
// same cold element collapse into one directory load (singleflight), so a
// stampede of queries over a hot-but-uncached element costs one KV read.
type IndexCache struct {
	lfu *ShardedLFU
	dir Directory

	flights flightGroup
	loads   atomic.Int64 // Directory.Load calls actually issued
	shared  atomic.Int64 // misses served by piggy-backing on an in-flight load
}

// NewIndexCache builds an index cache with the given LFU capacity (number
// of element directories held in memory) and the default shard count.
func NewIndexCache(capacity int, dir Directory) *IndexCache {
	return NewIndexCacheSharded(capacity, 0, dir)
}

// NewIndexCacheSharded is NewIndexCache with an explicit LFU shard count
// (0 → DefaultCacheShards; 1 → the single-mutex pre-sharding layout, kept
// for equivalence testing and ablations).
func NewIndexCacheSharded(capacity, shards int, dir Directory) *IndexCache {
	return &IndexCache{lfu: NewShardedLFU(capacity, shards), dir: dir}
}

// Shapes returns the used shapes of an element, loading from the directory
// on a cache miss. It satisfies tshape.ShapeProvider (errors surface as an
// empty directory, which is sound for queries over elements that have never
// stored a shape). The returned slice is shared, read-only cache state:
// callers iterate it but must never write through it.
func (ic *IndexCache) Shapes(elemCode uint64) []Shape {
	if shapes, ok := ic.lfu.Get(elemCode); ok {
		return shapes
	}
	shapes, leader, install, err := ic.flights.do(elemCode, func() ([]Shape, error) {
		ic.loads.Add(1)
		return ic.dir.Load(elemCode)
	})
	if !leader {
		ic.shared.Add(1)
	}
	if err != nil || shapes == nil {
		return nil
	}
	// Only the leader installs, and only if no Update/Invalidate raced the
	// load (the flight would have been forgotten, marking the result stale).
	if install {
		ic.lfu.Put(elemCode, shapes)
	}
	return shapes
}

// Update persists a new directory for an element and refreshes the cache.
// Any load in flight for the element is marked stale so it cannot
// overwrite the new tuples with pre-update state.
func (ic *IndexCache) Update(elemCode uint64, shapes []Shape) error {
	if err := ic.dir.Store(elemCode, shapes); err != nil {
		return err
	}
	ic.flights.forget(elemCode)
	ic.lfu.Put(elemCode, shapes)
	return nil
}

// Invalidate drops an element from the in-memory layer only.
func (ic *IndexCache) Invalidate(elemCode uint64) {
	ic.flights.forget(elemCode)
	ic.lfu.Invalidate(elemCode)
}

// Stats exposes the aggregated LFU counters plus the singleflight view of
// the miss path.
func (ic *IndexCache) Stats() CacheStats {
	st := ic.lfu.Stats()
	st.DirLoads = ic.loads.Load()
	st.SharedLoads = ic.shared.Load()
	return st
}

// ResetStats clears every counter (LFU entries survive); benchmark phases
// use it to read clean deltas.
func (ic *IndexCache) ResetStats() {
	for _, sh := range ic.lfu.shards {
		sh.mu.Lock()
		sh.hits, sh.misses, sh.evicts = 0, 0, 0
		sh.mu.Unlock()
	}
	ic.loads.Store(0)
	ic.shared.Store(0)
}

// MemoryDirectory is a Directory held in process memory, for tests and for
// engines configured without persistence.
type MemoryDirectory struct {
	mu sync.RWMutex
	m  map[uint64][]Shape
}

// NewMemoryDirectory creates an empty in-memory directory.
func NewMemoryDirectory() *MemoryDirectory {
	return &MemoryDirectory{m: make(map[uint64][]Shape)}
}

// Load implements Directory.
func (d *MemoryDirectory) Load(elemCode uint64) ([]Shape, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	shapes, ok := d.m[elemCode]
	if !ok {
		return nil, nil
	}
	out := make([]Shape, len(shapes))
	copy(out, shapes)
	return out, nil
}

// Store implements Directory.
func (d *MemoryDirectory) Store(elemCode uint64, shapes []Shape) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := make([]Shape, len(shapes))
	copy(cp, shapes)
	d.m[elemCode] = cp
	return nil
}

// Elements returns the number of elements with stored directories.
func (d *MemoryDirectory) Elements() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.m)
}
