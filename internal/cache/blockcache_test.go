package cache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// load returns a loader producing a distinct value with the given charge,
// counting how many times it actually ran.
func countingLoader(calls *atomic.Int64, v any, charge int64) func() (any, int64, error) {
	return func() (any, int64, error) {
		calls.Add(1)
		return v, charge, nil
	}
}

func TestBlockCacheHitMissStats(t *testing.T) {
	c := NewBlockCache(1<<20, 1)
	var calls atomic.Int64

	v, kind, err := c.GetOrLoad(1, countingLoader(&calls, "a", 100))
	if err != nil || v != "a" || kind != CacheLoad {
		t.Fatalf("first access = (%v, %v, %v), want load of a", v, kind, err)
	}
	v, kind, _ = c.GetOrLoad(1, countingLoader(&calls, "wrong", 100))
	if v != "a" || kind != CacheHit {
		t.Fatalf("second access = (%v, %v), want cached a", v, kind)
	}
	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times, want 1", calls.Load())
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	if c.UsedBytes() != 100 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d, want 100/1", c.UsedBytes(), c.Len())
	}
}

func TestBlockCacheByteCapEviction(t *testing.T) {
	// Single shard, 1000-byte cap, 300-byte blocks: at most 3 resident.
	c := NewBlockCache(1000, 1)
	var calls atomic.Int64
	for k := uint64(0); k < 10; k++ {
		c.GetOrLoad(k, countingLoader(&calls, k, 300))
	}
	if used := c.UsedBytes(); used > 1000 {
		t.Fatalf("used %d bytes, cap 1000", used)
	}
	if n := c.Len(); n > 3 {
		t.Fatalf("%d blocks resident, at most 3 fit", n)
	}
	if st := c.Stats(); st.Evictions < 7 {
		t.Fatalf("evictions = %d, want >= 7", st.Evictions)
	}

	// An entry larger than the whole shard is served but never installed.
	before := c.Len()
	if _, kind, _ := c.GetOrLoad(99, countingLoader(&calls, "big", 4000)); kind != CacheLoad {
		t.Fatalf("oversized load kind = %v", kind)
	}
	if _, ok := c.Get(99); ok {
		t.Fatal("oversized block was installed")
	}
	if c.Len() != before {
		t.Fatal("oversized load changed residency")
	}
}

func TestBlockCacheLFUKeepsHotBlocks(t *testing.T) {
	c := NewBlockCache(1000, 1)
	var calls atomic.Int64
	c.GetOrLoad(1, countingLoader(&calls, "hot", 300))
	for i := 0; i < 10; i++ {
		c.GetOrLoad(1, countingLoader(&calls, "hot", 300))
	}
	// Stream cold blocks through; the hot block must survive.
	for k := uint64(100); k < 110; k++ {
		c.GetOrLoad(k, countingLoader(&calls, k, 300))
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("hot block evicted by cold streaming blocks")
	}
}

func TestBlockCacheInvalidate(t *testing.T) {
	c := NewBlockCache(1<<20, 0)
	var calls atomic.Int64
	c.GetOrLoad(7, countingLoader(&calls, "v", 50))
	c.Invalidate(7)
	if _, ok := c.Get(7); ok {
		t.Fatal("invalidated block still resident")
	}
	if c.UsedBytes() != 0 {
		t.Fatalf("used = %d after invalidate, want 0", c.UsedBytes())
	}
	c.Invalidate(7) // absent key: must be a no-op
}

func TestBlockCacheLoadErrorNotCached(t *testing.T) {
	c := NewBlockCache(1<<20, 1)
	boom := errors.New("boom")
	if _, _, err := c.GetOrLoad(5, func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := c.Get(5); ok {
		t.Fatal("failed load was installed")
	}
	var calls atomic.Int64
	if v, kind, err := c.GetOrLoad(5, countingLoader(&calls, "ok", 10)); err != nil || v != "ok" || kind != CacheLoad {
		t.Fatalf("retry after failed load = (%v, %v, %v)", v, kind, err)
	}
}

// TestBlockCacheSingleflight hammers one key from many goroutines with a
// loader that blocks until every goroutine has arrived: exactly one loader
// run, everyone gets the same value, joiners report CacheShared.
func TestBlockCacheSingleflight(t *testing.T) {
	c := NewBlockCache(1<<20, 1)
	const workers = 16
	var calls atomic.Int64
	gate := make(chan struct{})
	var kinds [workers]LoadKind
	var vals [workers]any
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, kind, err := c.GetOrLoad(42, func() (any, int64, error) {
				calls.Add(1)
				<-gate // hold the flight open so others must join
				return "shared", 64, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			vals[i], kinds[i] = v, kind
		}(i)
	}
	// Let every worker reach GetOrLoad, then release the leader.
	for c.Stats().SharedLoads < workers-1 {
		if calls.Load() > 1 {
			t.Fatal("multiple loaders ran concurrently")
		}
	}
	close(gate)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("loader ran %d times, want 1", calls.Load())
	}
	loads, shares := 0, 0
	for i := range kinds {
		if vals[i] != "shared" {
			t.Fatalf("worker %d got %v", i, vals[i])
		}
		switch kinds[i] {
		case CacheLoad:
			loads++
		case CacheShared:
			shares++
		}
	}
	if loads != 1 || shares != workers-1 {
		t.Fatalf("loads=%d shares=%d, want 1/%d", loads, shares, workers-1)
	}
}
