package cache

import (
	"math/bits"
	"sync"
)

// BlockCache is the store-wide cache of decompressed run blocks: a sharded,
// byte-charged LFU with singleflight loads. It reuses the index cache's
// design — splitmix64 shard routing and frequency-bucket LFU — but charges
// entries by decoded size instead of by count, because blocks are three
// orders of magnitude heavier than shape directories and a count cap would
// make the resident ceiling depend on the workload's value sizes. Unlike
// the index LFU, buckets group entries by the power-of-two tier of their
// hit count rather than the exact count: a warm scan hits every resident
// block on every pass, and exact-count bucket surgery (detach, allocate the
// next bucket, attach) on each of those hits dominated the read path. With
// tiers, the common hit is a bare counter increment; list surgery happens
// only when the count crosses a power of two, while eviction order is still
// coldest-tier-first.
//
// Values are opaque (any): the kvstore caches *decodedBlock without this
// package importing it. Keys pack (run id, block number); run ids are never
// reused, so entries for dropped runs simply age out under LFU pressure —
// no invalidation protocol is needed, and runs shared across replicas keep
// their cached blocks through compactions of other copies.
type BlockCache struct {
	shards []*bcShard
	mask   uint64
}

// LoadKind describes how GetOrLoad satisfied a request.
type LoadKind int

const (
	// CacheHit: the block was resident.
	CacheHit LoadKind = iota
	// CacheLoad: this caller ran the loader (a charged miss).
	CacheLoad
	// CacheShared: another caller's in-flight load was joined; no new
	// physical read happened.
	CacheShared
)

// NewBlockCache builds a cache bounded by capacityBytes of decoded blocks,
// split over shards (rounded up to a power of two; 0 means
// DefaultCacheShards). Each shard holds capacity/shards bytes.
func NewBlockCache(capacityBytes int64, shards int) *BlockCache {
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	if capacityBytes < 1 {
		capacityBytes = 1
	}
	per := capacityBytes / int64(n)
	if per < 1 {
		per = 1
	}
	c := &BlockCache{shards: make([]*bcShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = &bcShard{
			capBytes: per,
			entries:  make(map[uint64]*bcEntry),
			flight:   make(map[uint64]*bcFlight),
		}
	}
	return c
}

func (c *BlockCache) shard(key uint64) *bcShard {
	h := key
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return c.shards[h&c.mask]
}

// GetOrLoad returns the cached value for key, running load (deduplicated
// against concurrent callers of the same key) on a miss and installing its
// result with the charge it reports. The returned kind tells the caller
// whether a physical read was performed, so the cost model can charge
// exactly one disk read per leader load.
func (c *BlockCache) GetOrLoad(key uint64, load func() (any, int64, error)) (any, LoadKind, error) {
	return c.shard(key).getOrLoad(key, load)
}

// Get returns the cached value without loading.
func (c *BlockCache) Get(key uint64) (any, bool) { return c.shard(key).get(key) }

// Invalidate drops a cached block.
func (c *BlockCache) Invalidate(key uint64) { c.shard(key).invalidate(key) }

// UsedBytes returns the resident decoded bytes across shards.
func (c *BlockCache) UsedBytes() int64 {
	var n int64
	for _, s := range c.shards {
		s.mu.Lock()
		n += s.usedBytes
		s.mu.Unlock()
	}
	return n
}

// Len returns the number of resident blocks.
func (c *BlockCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates the per-shard counters. SharedLoads counts misses that
// joined another caller's in-flight load instead of reading themselves.
func (c *BlockCache) Stats() CacheStats {
	var out CacheStats
	for _, s := range c.shards {
		s.mu.Lock()
		out.Hits += s.hits
		out.Misses += s.misses
		out.Evictions += s.evicts
		out.SharedLoads += s.shared
		s.mu.Unlock()
	}
	return out
}

// bcEntry is one resident block with its charge and frequency-bucket links.
// freq is the exact hit count; the entry lives in the bucket for
// tierOf(freq), so most bumps touch nothing but the counter.
type bcEntry struct {
	key        uint64
	value      any
	charge     int64
	freq       int
	prev, next *bcEntry
	bucketOf   *bcBucket
}

// tierOf maps a hit count to its power-of-two tier: 1→1, 2..3→2, 4..7→3.
func tierOf(freq int) int { return bits.Len(uint(freq)) }

// bcBucket is a doubly-linked list of entries sharing a frequency tier,
// newest at head; buckets are kept sorted by tier, coldest first.
type bcBucket struct {
	tier       int
	head, tail *bcEntry
	prev, next *bcBucket
}

// bcFlight is one load in progress; joiners wait on wg and read the result
// fields afterwards (written exactly once, before Done).
type bcFlight struct {
	wg     sync.WaitGroup
	value  any
	charge int64
	err    error
}

type bcShard struct {
	mu        sync.Mutex
	capBytes  int64
	usedBytes int64
	entries   map[uint64]*bcEntry
	buckets   *bcBucket
	flight    map[uint64]*bcFlight

	hits, misses, shared, evicts int64
}

func (s *bcShard) get(key uint64) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.bump(e)
	return e.value, true
}

func (s *bcShard) getOrLoad(key uint64, load func() (any, int64, error)) (any, LoadKind, error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.hits++
		s.bump(e)
		v := e.value
		s.mu.Unlock()
		return v, CacheHit, nil
	}
	if f, ok := s.flight[key]; ok {
		s.shared++
		s.mu.Unlock()
		f.wg.Wait()
		return f.value, CacheShared, f.err
	}
	f := &bcFlight{}
	f.wg.Add(1)
	s.flight[key] = f
	s.mu.Unlock()

	f.value, f.charge, f.err = load()

	s.mu.Lock()
	if s.flight[key] == f {
		delete(s.flight, key)
	}
	s.misses++
	if f.err == nil {
		s.install(key, f.value, f.charge)
	}
	s.mu.Unlock()
	f.wg.Done()
	return f.value, CacheLoad, f.err
}

func (s *bcShard) invalidate(key uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.entries[key]; ok {
		s.detach(e)
		delete(s.entries, key)
		s.usedBytes -= e.charge
	}
}

// install inserts a freshly loaded block and evicts until the shard fits.
// Oversized blocks (charge beyond the whole shard) are served uncached.
func (s *bcShard) install(key uint64, v any, charge int64) {
	if charge > s.capBytes {
		return
	}
	if e, ok := s.entries[key]; ok { // racing loads of the same key
		s.usedBytes += charge - e.charge
		e.value, e.charge = v, charge
		s.bump(e)
	} else {
		e = &bcEntry{key: key, value: v, charge: charge, freq: 1}
		s.entries[key] = e
		s.attach(e)
		s.usedBytes += charge
	}
	for s.usedBytes > s.capBytes && s.buckets != nil {
		victim := s.buckets.tail
		s.detach(victim)
		delete(s.entries, victim.key)
		s.usedBytes -= victim.charge
		s.evicts++
	}
}

// --- O(1) LFU bucket plumbing (byte-charged variant of lfu.go) -----------

func (s *bcShard) attach(e *bcEntry) {
	b := s.findOrInsertBucket(tierOf(e.freq))
	e.prev = nil
	e.next = b.head
	if b.head != nil {
		b.head.prev = e
	}
	b.head = e
	if b.tail == nil {
		b.tail = e
	}
	e.bucketOf = b
}

func (s *bcShard) detach(e *bcEntry) {
	b := e.bucketOf
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		b.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		b.tail = e.prev
	}
	e.prev, e.next = nil, nil
	if b.head == nil {
		s.removeBucket(b)
	}
	e.bucketOf = nil
}

// bump records a hit. The hot path — the new count stays inside the
// entry's current tier — is a plain increment; only a tier crossing (count
// reaching a power of two) pays for list surgery.
func (s *bcShard) bump(e *bcEntry) {
	e.freq++
	if tierOf(e.freq) == e.bucketOf.tier {
		return
	}
	s.detach(e)
	s.attach(e)
}

func (s *bcShard) findOrInsertBucket(tier int) *bcBucket {
	if s.buckets == nil || s.buckets.tier > tier {
		b := &bcBucket{tier: tier, next: s.buckets}
		if s.buckets != nil {
			s.buckets.prev = b
		}
		s.buckets = b
		return b
	}
	cur := s.buckets
	for cur.next != nil && cur.next.tier <= tier {
		cur = cur.next
	}
	if cur.tier == tier {
		return cur
	}
	b := &bcBucket{tier: tier, prev: cur, next: cur.next}
	if cur.next != nil {
		cur.next.prev = b
	}
	cur.next = b
	return b
}

func (s *bcShard) removeBucket(b *bcBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.buckets = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}
