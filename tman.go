// Package tman is a high-performance trajectory data management system
// built on an embedded ordered key-value store — a Go implementation of
// "TMan: A High-Performance Trajectory Data Management System Based on
// Key-Value Stores" (He et al., ICDE 2024).
//
// TMan stores each trajectory intact in a single primary-table row and
// indexes it with:
//
//   - the TR index — time ranges become single integers with no redundant
//     storage (Eq. 1 of the paper);
//   - the TShape index — irregular trajectory shapes become combinations
//     of quad-tree cells inside "enlarged elements", with shape codes
//     optimized so similar shapes get adjacent values (a TSP solved by
//     greedy or genetic search);
//   - IDT and ST composites for ID-temporal and spatio-temporal queries.
//
// Six query types are supported: temporal range, spatial range,
// ID-temporal, spatio-temporal range, threshold similarity and top-k
// similarity (discrete Fréchet, DTW, Hausdorff).
//
// # Quick start
//
//	db, err := tman.Open(tman.Beijing)
//	if err != nil { ... }
//	db.Put(&tman.Trajectory{
//		OID: "taxi-42", TID: "trip-0001",
//		Points: []tman.Point{{X: 116.39, Y: 39.91, T: 1700000000000}, ...},
//	})
//	trips, rep, err := db.QuerySpace(tman.Rect{
//		MinX: 116.3, MinY: 39.8, MaxX: 116.5, MaxY: 40.0,
//	})
//	fmt.Println(len(trips), "trips,", rep.Candidates, "candidates scanned")
package tman

import (
	"context"
	"time"

	"github.com/tman-db/tman/internal/engine"
	"github.com/tman-db/tman/internal/geo"
	"github.com/tman-db/tman/internal/index/tshape"
	"github.com/tman-db/tman/internal/kvstore"
	"github.com/tman-db/tman/internal/model"
	"github.com/tman-db/tman/internal/similarity"
)

// Core data types, re-exported for the public API.
type (
	// Point is a single GPS observation: planar X/Y (typically lng/lat
	// degrees) and a Unix-millisecond timestamp.
	Point = model.Point
	// Trajectory is a time-ordered point sequence of one moving object.
	Trajectory = model.Trajectory
	// TimeRange is a closed interval in Unix milliseconds.
	TimeRange = model.TimeRange
	// Rect is an axis-aligned rectangle in dataset coordinates.
	Rect = geo.Rect
	// Report describes an executed query (plan, candidates, timings).
	Report = engine.QueryReport
	// Measure selects a similarity distance function.
	Measure = similarity.Measure
	// ShapeEncoding selects the TShape shape-code optimization.
	ShapeEncoding = tshape.Encoding
	// FaultConfig describes the deterministic fault model injected into the
	// simulated cluster (seeded transient RPC failures, slow nodes, region
	// unavailability windows after splits/compactions).
	FaultConfig = kvstore.FaultConfig
	// RetryPolicy controls client RPC retries: capped attempts and
	// exponential backoff with jitter, charged analytically (no sleeping).
	RetryPolicy = kvstore.RetryPolicy
)

// Similarity measures.
const (
	Frechet   = similarity.Frechet
	DTW       = similarity.DTW
	Hausdorff = similarity.Hausdorff
)

// Shape-code encodings (paper Section IV-A2(3)).
const (
	EncodingBitmap  = tshape.EncodingBitmap
	EncodingGreedy  = tshape.EncodingGreedy
	EncodingGenetic = tshape.EncodingGenetic
)

// Beijing is the TDrive dataset boundary from the paper, a convenient
// default region for examples.
var Beijing = Rect{MinX: 110, MinY: 35, MaxX: 125, MaxY: 45}

// Option customizes a DB at Open time.
type Option func(*engine.Config)

// WithTimePeriod sets the TR index period length (milliseconds) and the
// maximum periods per time bin N. The paper pairs 1 hour with N = 48.
func WithTimePeriod(periodMillis int64, n int) Option {
	return func(c *engine.Config) {
		c.PeriodMillis = periodMillis
		c.N = n
	}
}

// WithShapeGrid sets the TShape enlarged-element dimensions α×β and the
// maximum quad-tree resolution g.
func WithShapeGrid(alpha, beta, g int) Option {
	return func(c *engine.Config) {
		c.Alpha = alpha
		c.Beta = beta
		c.G = g
	}
}

// WithShapeEncoding selects the shape-code optimization method.
func WithShapeEncoding(enc ShapeEncoding) Option {
	return func(c *engine.Config) { c.Encoding = enc }
}

// WithShards sets the hash-shard count used to spread rows across regions.
func WithShards(n int) Option {
	return func(c *engine.Config) { c.Shards = n }
}

// WithIndexCache toggles the shape directory + LFU index cache and sets
// its capacity (element directories held in memory).
func WithIndexCache(enabled bool, capacity int) Option {
	return func(c *engine.Config) {
		c.UseIndexCache = enabled
		if capacity > 0 {
			c.CacheCapacity = capacity
		}
	}
}

// WithPushDown toggles store-side filter evaluation (on by default).
func WithPushDown(enabled bool) Option {
	return func(c *engine.Config) { c.PushDown = enabled }
}

// WithDataDir makes the database durable: mutations are logged to a WAL
// under dir and Open recovers any previous state found there. Call
// DB.Close before exiting and DB.Checkpoint periodically to bound log
// growth.
func WithDataDir(dir string) Option {
	return func(c *engine.Config) { c.DataDir = dir }
}

// WithPrimaryTemporal keys the primary table by the temporal index instead
// of the spatial one — the right choice for deployments dominated by
// temporal range queries (paper Section IV-B).
func WithPrimaryTemporal() Option {
	return func(c *engine.Config) { c.Primary = engine.KindTR }
}

// WithFaultInjection enables the deterministic fault model on the simulated
// cluster. Queries issued through the Ctx methods retry transient failures
// per the retry policy and degrade to partial results on deadline expiry.
func WithFaultInjection(fc FaultConfig) Option {
	return func(c *engine.Config) { c.KV.Fault = fc }
}

// WithRetryPolicy overrides the client RPC retry policy (attempts, backoff
// bounds, jitter). Zero fields fall back to DefaultRetryPolicy values.
func WithRetryPolicy(rp RetryPolicy) Option {
	return func(c *engine.Config) { c.KV.Retry = rp }
}

// WithReplication gives every region n copies (leader included) on distinct
// simulated nodes, kept in sync by synchronous WAL-frame shipping. A node
// death (Engine.Store().KillNode) promotes a follower deterministically with
// epoch fencing, so acked writes survive any single node loss while one
// follower is live; reads can opt into bounded-staleness follower serving
// with WithMaxStaleness. n <= 1 disables replication.
func WithReplication(n int) Option {
	return func(c *engine.Config) { c.KV.Replicas = n }
}

// WithMaxStaleness lets queries under ctx be served by follower replicas at
// most maxStaleness behind the leader — the follower-read knob exposed over
// HTTP as ?max_staleness_ms=. Zero accepts only fully caught-up followers; a
// negative duration pins reads to the leader (the default without this
// option). Replication must be enabled for it to have any effect.
func WithMaxStaleness(ctx context.Context, maxStaleness time.Duration) context.Context {
	return kvstore.WithReadPref(ctx, kvstore.ReadPref{MaxStalenessMS: int64(maxStaleness / time.Millisecond)})
}

// WithBlockTuning adjusts the block-based run format of the underlying
// store: blockBytes is the target encoded block size (0 keeps the 4 KiB
// default, minimum 512), bloomBits the per-key filter density (0 keeps 10,
// negative disables bloom filters), and cacheBytes the store-wide decoded
// block cache capacity (0 keeps 32 MiB, negative disables caching so every
// block read decodes — and is charged — afresh).
func WithBlockTuning(blockBytes, bloomBits, cacheBytes int) Option {
	return func(c *engine.Config) {
		c.KV.BlockSizeBytes = blockBytes
		c.KV.BloomBitsPerKey = bloomBits
		c.KV.BlockCacheBytes = cacheBytes
	}
}

// WithFenceTuning controls block fence pruning (zone maps): when enabled
// (the default), every primary-table run block carries a fence — the
// min/max time range and bounding box of its rows — and queries skip
// blocks whose fence contradicts their predicate before fetching or
// decoding them. Passing false disables fences entirely; results are
// identical either way, only the per-query I/O differs. Kept as an escape
// hatch and for A/B measurement against the unfenced read path.
func WithFenceTuning(enabled bool) Option {
	return func(c *engine.Config) { c.KV.DisableBlockFences = !enabled }
}

// WithCompactionTuning adjusts the tiered compaction scheduler of the
// underlying store: fanIn is how many consecutive same-size-tier runs a
// region accumulates before they merge (0 keeps the default 4, minimum 2 —
// higher defers merging and lowers write amplification at the cost of more
// runs per read), and subRanges is the number of key-range partitions a
// large merge is split into for parallel execution on the flusher pool
// (0 keeps 4, 1 disables partitioning). monolithic restores the legacy
// policy that rewrites every run in the region whenever the run count
// crosses the per-region maximum — kept for A/B comparison.
func WithCompactionTuning(fanIn, subRanges int, monolithic bool) Option {
	return func(c *engine.Config) {
		c.KV.CompactFanIn = fanIn
		c.KV.CompactSubRanges = subRanges
		c.KV.MonolithicCompaction = monolithic
	}
}

// WithTraceSampling records a full trace-span tree for the given fraction
// of queries (0..1) into the engine's trace ring, inspectable through the
// HTTP /trace endpoint. 0 (the default) disables sampling; traced queries
// requested explicitly through /trace are always recorded.
func WithTraceSampling(rate float64) Option {
	return func(c *engine.Config) { c.TraceSampleRate = rate }
}

// WithSLO sets the per-query latency objective every query type is tracked
// against, and the allowed late fraction (the error budget — 0 keeps the
// 0.01 default, i.e. a p99 objective). Queries finishing within the
// objective count as "good", over it as "late"; burn-rate gauges report
// late-fraction over budget on trailing windows. targetMillis 0 keeps the
// 250ms default; negative disables SLO tracking (the series stay at zero).
func WithSLO(targetMillis int, budget float64) Option {
	return func(c *engine.Config) {
		c.SLOTargetMillis = targetMillis
		c.SLOBudget = budget
	}
}

// DB is a TMan database instance.
type DB struct {
	eng *engine.Engine
}

// Open creates a TMan database over the given spatial boundary. The
// boundary must enclose all data; points outside are clamped for indexing
// (their stored coordinates are exact).
func Open(boundary Rect, opts ...Option) (*DB, error) {
	cfg := engine.DefaultConfig(boundary)
	for _, o := range opts {
		o(&cfg)
	}
	eng, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	return &DB{eng: eng}, nil
}

// Put stores one trajectory. The trajectory must have a TID, at least one
// point, and time-ordered points (use Trajectory.SortByTime to repair).
func (db *DB) Put(t *Trajectory) error { return db.eng.Put(t) }

// PutBatch stores many trajectories through the batched write path: all
// inputs are validated up front (an invalid trajectory rejects the whole
// batch before anything is written), row values are encoded in parallel,
// and rows land as one grouped multi-put per underlying KV table — one
// cost-model RPC per region batch and a single WAL group commit per table.
// For bulk ingest this is substantially faster than calling Put in a loop.
func (db *DB) PutBatch(ts []*Trajectory) error { return db.eng.BatchPut(ts) }

// Delete removes a trajectory previously stored (typically one read back
// from a query).
func (db *DB) Delete(t *Trajectory) error { return db.eng.Delete(t) }

// Len returns the number of stored trajectories.
func (db *DB) Len() int64 { return db.eng.Rows() }

// QueryTimeRange returns all trajectories whose time range intersects q.
func (db *DB) QueryTimeRange(q TimeRange) ([]*Trajectory, Report, error) {
	return db.eng.TemporalRangeQuery(q)
}

// QueryTimeRangeCtx is QueryTimeRange under a context: a deadline degrades
// the answer to a correct subset with Report.Partial set instead of
// failing; cancellation aborts with an error; transient cluster faults are
// retried per the retry policy.
func (db *DB) QueryTimeRangeCtx(ctx context.Context, q TimeRange) ([]*Trajectory, Report, error) {
	return db.eng.TemporalRangeQueryCtx(ctx, q)
}

// QuerySpace returns all trajectories intersecting the window (dataset
// coordinates).
func (db *DB) QuerySpace(sr Rect) ([]*Trajectory, Report, error) {
	return db.eng.SpatialRangeQuery(sr)
}

// QuerySpaceCtx is QuerySpace under a context (deadline → partial results,
// cancel → error, faults retried).
func (db *DB) QuerySpaceCtx(ctx context.Context, sr Rect) ([]*Trajectory, Report, error) {
	return db.eng.SpatialRangeQueryCtx(ctx, sr)
}

// QueryObject returns the trajectories of one object intersecting q.
func (db *DB) QueryObject(oid string, q TimeRange) ([]*Trajectory, Report, error) {
	return db.eng.IDTemporalQuery(oid, q)
}

// QueryObjectCtx is QueryObject under a context (deadline → partial
// results, cancel → error, faults retried).
func (db *DB) QueryObjectCtx(ctx context.Context, oid string, q TimeRange) ([]*Trajectory, Report, error) {
	return db.eng.IDTemporalQueryCtx(ctx, oid, q)
}

// QuerySpaceTime returns trajectories intersecting both the window and the
// time range; the cost-based optimizer picks the execution plan.
func (db *DB) QuerySpaceTime(sr Rect, q TimeRange) ([]*Trajectory, Report, error) {
	return db.eng.SpatioTemporalQuery(sr, q)
}

// QuerySpaceTimeCtx is QuerySpaceTime under a context (deadline → partial
// results, cancel → error, faults retried).
func (db *DB) QuerySpaceTimeCtx(ctx context.Context, sr Rect, q TimeRange) ([]*Trajectory, Report, error) {
	return db.eng.SpatioTemporalQueryCtx(ctx, sr, q)
}

// QuerySimilarThreshold returns all trajectories within theta of the query
// under the chosen measure. theta is a fraction of the boundary extent
// (normalized units), matching the paper's θ convention.
func (db *DB) QuerySimilarThreshold(q *Trajectory, m Measure, theta float64) ([]*Trajectory, Report, error) {
	return db.eng.SimilarityThresholdQuery(q, m, theta)
}

// QuerySimilarThresholdCtx is QuerySimilarThreshold under a context
// (deadline → partial results, cancel → error, faults retried).
func (db *DB) QuerySimilarThresholdCtx(ctx context.Context, q *Trajectory, m Measure, theta float64) ([]*Trajectory, Report, error) {
	return db.eng.SimilarityThresholdQueryCtx(ctx, q, m, theta)
}

// QuerySimilarTopK returns the k trajectories most similar to the query.
func (db *DB) QuerySimilarTopK(q *Trajectory, m Measure, k int) ([]*Trajectory, Report, error) {
	return db.eng.SimilarityTopKQuery(q, m, k)
}

// QuerySimilarTopKCtx is QuerySimilarTopK under a context; on deadline
// expiry the best results found so far are returned with Report.Partial.
func (db *DB) QuerySimilarTopKCtx(ctx context.Context, q *Trajectory, m Measure, k int) ([]*Trajectory, Report, error) {
	return db.eng.SimilarityTopKQueryCtx(ctx, q, m, k)
}

// QueryNearest returns the k trajectories passing closest to the point
// (x, y) in dataset coordinates — e.g. "which trips went by this address".
func (db *DB) QueryNearest(x, y float64, k int) ([]*Trajectory, Report, error) {
	return db.eng.NearestQuery(x, y, k)
}

// QueryNearestCtx is QueryNearest under a context; on deadline expiry the
// best neighbours found so far are returned with Report.Partial.
func (db *DB) QueryNearestCtx(ctx context.Context, x, y float64, k int) ([]*Trajectory, Report, error) {
	return db.eng.NearestQueryCtx(ctx, x, y, k)
}

// Close flushes durable state to disk (a no-op for in-memory databases).
func (db *DB) Close() error { return db.eng.Close() }

// Checkpoint writes a snapshot of a durable database and truncates its
// write-ahead log. It returns an error for in-memory databases.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// Engine exposes the underlying engine for advanced use (statistics,
// benchmarks, ablations).
func (db *DB) Engine() *engine.Engine { return db.eng }
